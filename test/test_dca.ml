(* End-to-end tests of the DCA pipeline on the paper's motivating examples
   (Fig. 1 and Fig. 2) and on loops with known ground truth. *)

open Dca_analysis
open Dca_core

let analyze ?config ?static src = Driver.analyze_source ?config ?static ~file:"<test>" src

(* The single deepest tested loop result in function [f]. *)
let results_in f (results : Driver.loop_result list) =
  List.filter (fun r -> r.Driver.lr_loop.Loops.l_func = f) results

let check_verdict name expected (r : Driver.loop_result) =
  let actual =
    match r.Driver.lr_decision with
    | Driver.Commutative -> "commutative"
    | Driver.Non_commutative _ -> "non-commutative"
    | Driver.Untestable _ -> "untestable"
    | Driver.Rejected _ -> "rejected"
    | Driver.Subsumed _ -> "subsumed"
    | Driver.Aborted _ -> "aborted"
  in
  Alcotest.(check string)
    (Printf.sprintf "%s (%s: %s)" name r.Driver.lr_label
       (Driver.decision_to_string r.Driver.lr_decision))
    expected actual

(* Fig. 1(a): array map loop. *)
let test_fig1a () =
  let _, results =
    analyze
      {|
      int array[16];
      void main() {
        int i;
        for (i = 0; i < 16; i = i + 1) { array[i] = array[i] + 1; }
        printi(array[7]);
      }
      |}
  in
  match results_in "main" results with
  | [ r ] -> check_verdict "array map is commutative" "commutative" r
  | rs -> Alcotest.failf "expected 1 loop, got %d" (List.length rs)

(* Fig. 1(b): PLDS map loop — defeats dependence analysis, commutative
   under DCA. *)
let test_fig1b () =
  let _, results =
    analyze
      {|
      struct node { int val; struct node *next; }
      struct node *head;
      void build() {
        int i;
        for (i = 0; i < 12; i = i + 1) {
          struct node *n = new struct node;
          n->val = i;
          n->next = head;
          head = n;
        }
      }
      void main() {
        build();
        struct node *ptr = head;
        while (ptr) {
          ptr->val = ptr->val + 1;
          ptr = ptr->next;
        }
        int total = 0;
        struct node *q = head;
        while (q) { total = total + q->val; q = q->next; }
        printi(total);
      }
      |}
  in
  match results_in "main" results with
  | [ map_loop; sum_loop ] ->
      check_verdict "PLDS map is commutative" "commutative" map_loop;
      check_verdict "PLDS sum reduction is commutative" "commutative" sum_loop
  | rs -> Alcotest.failf "expected 2 loops in main, got %d" (List.length rs)

(* A genuinely order-dependent loop: prefix sums (each iteration reads the
   previous element's updated value). *)
let test_prefix_sum_not_commutative () =
  let _, results =
    analyze
      {|
      int a[16];
      void main() {
        int i;
        for (i = 0; i < 16; i = i + 1) { a[i] = i; }
        for (i = 1; i < 16; i = i + 1) { a[i] = a[i] + a[i - 1]; }
        printi(a[15]);
      }
      |}
  in
  match results_in "main" results with
  | [ init_loop; prefix_loop ] ->
      check_verdict "init loop commutative" "commutative" init_loop;
      check_verdict "prefix sum not commutative" "non-commutative" prefix_loop
  | rs -> Alcotest.failf "expected 2 loops, got %d" (List.length rs)

(* Last-writer-wins: the final value depends on iteration order. *)
let test_last_writer_not_commutative () =
  let _, results =
    analyze
      {|
      int last;
      void main() {
        int i;
        for (i = 0; i < 10; i = i + 1) { last = i; }
        printi(last);
      }
      |}
  in
  match results_in "main" results with
  | [ r ] -> check_verdict "last writer wins" "non-commutative" r
  | rs -> Alcotest.failf "expected 1 loop, got %d" (List.length rs)

(* Scalar reduction: commutative even though dependence-based tools need
   special-casing. *)
let test_float_reduction () =
  let _, results =
    analyze
      {|
      float a[32];
      float total;
      void main() {
        int i;
        for (i = 0; i < 32; i = i + 1) { a[i] = hrand(i); }
        for (i = 0; i < 32; i = i + 1) { total = total + a[i] * a[i]; }
        print(total);
      }
      |}
  in
  match results_in "main" results with
  | [ _; red ] -> check_verdict "fp reduction commutative" "commutative" red
  | rs -> Alcotest.failf "expected 2 loops, got %d" (List.length rs)

(* I/O excludes a loop in the static stage (paper §IV-E). *)
let test_io_rejected () =
  let _, results =
    analyze
      {|
      void main() {
        int i;
        for (i = 0; i < 3; i = i + 1) { printi(i); }
      }
      |}
  in
  match results_in "main" results with
  | [ r ] -> check_verdict "io loop rejected" "rejected" r
  | rs -> Alcotest.failf "expected 1 loop, got %d" (List.length rs)

(* Fig. 2: BFS with worklists.  The top-down step pops from the frontier
   (iterator, via promotion) and pushes to the next frontier (payload), and
   the dist updates are commutative. *)
let bfs_source =
  {|
  struct node { int vert; struct node *next; }
  struct list { struct node *head; int size; }

  int nvert;
  struct list *adj[16];     // adjacency lists
  int dist[16];
  struct list *frontier;
  struct list *next_frontier;

  void push(struct list *l, int v) {
    struct node *n = new struct node;
    n->vert = v;
    n->next = l->head;
    l->head = n;
    l->size = l->size + 1;
  }

  int pop(struct list *l) {
    struct node *n = l->head;
    l->head = n->next;
    l->size = l->size - 1;
    return n->vert;
  }

  void add_edge(int a, int b) {
    push(adj[a], b);
    push(adj[b], a);
  }

  void main() {
    nvert = 12;
    int i;
    for (i = 0; i < nvert; i = i + 1) {
      adj[i] = new struct list;
      dist[i] = 1000000;
    }
    frontier = new struct list;
    next_frontier = new struct list;
    // a small graph: a ring plus chords
    for (i = 0; i < nvert; i = i + 1) { add_edge(i, (i + 1) % nvert); }
    add_edge(0, 6);
    add_edge(2, 9);
    dist[0] = 0;
    push(frontier, 0);
    while (frontier->size) {
      // top-down step
      while (frontier->size) {
        int current = pop(frontier);
        struct node *n = adj[current]->head;
        while (n) {
          if (dist[n->vert] > dist[current] + 1) {
            dist[n->vert] = dist[current] + 1;
            push(next_frontier, n->vert);
          }
          n = n->next;
        }
      }
      struct list *tmp = frontier;
      frontier = next_frontier;
      next_frontier = tmp;
    }
    for (i = 0; i < nvert; i = i + 1) { printi(dist[i]); }
  }
  |}

let test_bfs () =
  let _, results = analyze bfs_source in
  let main_loops = results_in "main" results in
  (* find the top-down step: depth-2 loop in main *)
  let top_down =
    List.find_opt
      (fun r ->
        r.Driver.lr_loop.Loops.l_depth = 2)
      main_loops
  in
  match top_down with
  | Some r -> check_verdict "BFS top-down step commutative" "commutative" r
  | None -> Alcotest.fail "no depth-2 loop found in BFS main"

(* The worklist promotion must have happened for the BFS top-down loop. *)
let test_bfs_promotion_recorded () =
  let _, results = analyze bfs_source in
  let top_down =
    List.find (fun r -> r.Driver.lr_loop.Loops.l_depth = 2) (results_in "main" results)
  in
  match top_down.Driver.lr_outcome with
  | Some oc -> Alcotest.(check bool) "promotions or escalation happened" true
      (oc.Commutativity.oc_promotions > 0 || oc.Commutativity.oc_escalated)
  | None -> Alcotest.fail "expected a dynamic outcome"

(* Loops never executed by the workload are untestable (paper §V-C1, MG). *)
let test_unexecuted_loop () =
  let src =
    {|
    int flag;
    int a[4];
    void main() {
      int i;
      if (flag) {
        for (i = 0; i < 4; i = i + 1) { a[i] = i; }
      }
      printi(flag);
    }
    |}
  in
  (* Dynamically the loop never runs (flag is 0), so the dynamic stage
     alone must say untestable ... *)
  let _, dynamic = analyze ~static:false src in
  (match results_in "main" dynamic with
  | [ r ] ->
      check_verdict "unexecuted loop, prover off" "untestable" r;
      Alcotest.(check bool) "provenance dynamic" true (r.Driver.lr_provenance = Driver.Dynamic)
  | rs -> Alcotest.failf "expected 1 loop, got %d" (List.length rs));
  (* ... while the static prover decides without executing: a[i] = i is
     affinely independent, so the default pipeline proves it. *)
  let _, proved = analyze src in
  match results_in "main" proved with
  | [ r ] ->
      check_verdict "unexecuted loop, prover on" "commutative" r;
      Alcotest.(check bool) "provenance static" true (r.Driver.lr_provenance = Driver.Static)
  | rs -> Alcotest.failf "expected 1 loop, got %d" (List.length rs)

(* Iterator/payload separation on the motivating shapes. *)
let separation_of src fname =
  let prog = Dca_ir.Lower.compile ~file:"<test>" src in
  let info = Proginfo.analyze prog in
  let fi = Proginfo.func_info info fname in
  match Loops.loops fi.Proginfo.fi_forest with
  | [ l ] -> Iterator_rec.separate fi l
  | ls -> Alcotest.failf "expected exactly 1 loop in %s, got %d" fname (List.length ls)

let test_separation_for_loop () =
  let sep =
    separation_of
      "int a[8]; void f() { int i; for (i = 0; i < 8; i = i + 1) { a[i] = a[i] * 2; } } void main() { f(); }"
      "f"
  in
  Alcotest.(check int) "one interface var" 1 (List.length sep.Iterator_rec.sep_interface);
  let iv = List.hd sep.Iterator_rec.sep_interface in
  Alcotest.(check string) "interface is i" "i" iv.Iterator_rec.if_var.Dca_ir.Ir.vname;
  Alcotest.(check bool) "i is pre" true (iv.Iterator_rec.if_phase = Iterator_rec.Pre);
  Alcotest.(check bool) "payload nonempty" false (Iterator_rec.is_iterator_only sep)

let test_separation_plds () =
  let sep =
    separation_of
      {|
      struct node { int val; struct node *next; }
      struct node *head;
      void walk() {
        struct node *p = head;
        while (p) { p->val = p->val + 1; p = p->next; }
      }
      void main() { walk(); }
      |}
      "walk"
  in
  let names = List.map (fun iv -> iv.Iterator_rec.if_var.Dca_ir.Ir.vname) sep.Iterator_rec.sep_interface in
  Alcotest.(check bool) "p is interface" true (List.mem "p" names);
  let p = List.find (fun iv -> iv.Iterator_rec.if_var.Dca_ir.Ir.vname = "p") sep.Iterator_rec.sep_interface in
  Alcotest.(check bool) "p is pre" true (p.Iterator_rec.if_phase = Iterator_rec.Pre)

(* Schedules are permutations. *)
let prop_schedules_bijective =
  QCheck.Test.make ~count:200 ~name:"schedules are bijections"
    QCheck.(pair (int_bound 200) (int_bound 5))
    (fun (n, which) ->
      let sched =
        match which with
        | 0 -> Schedule.Identity
        | 1 -> Schedule.Reverse
        | 2 -> Schedule.Rotate
        | k -> Schedule.Shuffle k
      in
      let p = Schedule.apply sched n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.length p = n && Array.for_all (fun b -> b) seen)

(* Map loops over arrays are commutative for arbitrary sizes. *)
let prop_map_loops_commutative =
  QCheck.Test.make ~count:12 ~name:"map loops are always commutative"
    QCheck.(int_range 1 40)
    (fun n ->
      let src =
        Printf.sprintf
          {|
          int a[%d];
          void main() {
            int i;
            for (i = 0; i < %d; i = i + 1) { a[i] = a[i] + i * i; }
            printi(a[%d]);
          }
          |}
          n n (n / 2)
      in
      let _, results = analyze src in
      match results_in "main" results with [ r ] -> Driver.is_commutative r | _ -> false)

let suites =
  [
    ( "dca-motivating",
      [
        Alcotest.test_case "fig1a array map" `Quick test_fig1a;
        Alcotest.test_case "fig1b plds map" `Quick test_fig1b;
        Alcotest.test_case "prefix sum" `Quick test_prefix_sum_not_commutative;
        Alcotest.test_case "last writer" `Quick test_last_writer_not_commutative;
        Alcotest.test_case "fp reduction" `Quick test_float_reduction;
        Alcotest.test_case "io rejected" `Quick test_io_rejected;
        Alcotest.test_case "fig2 bfs" `Quick test_bfs;
        Alcotest.test_case "bfs promotion" `Quick test_bfs_promotion_recorded;
        Alcotest.test_case "unexecuted" `Quick test_unexecuted_loop;
      ] );
    ( "dca-separation",
      [
        Alcotest.test_case "for loop" `Quick test_separation_for_loop;
        Alcotest.test_case "plds loop" `Quick test_separation_plds;
        QCheck_alcotest.to_alcotest prop_schedules_bijective;
        QCheck_alcotest.to_alcotest prop_map_loops_commutative;
      ] );
  ]

(* ---------------------------------------------------------------- *)
(* Additional features: hierarchical exploration, advisor, codegen,  *)
(* IR verification                                                   *)
(* ---------------------------------------------------------------- *)

let nest_src =
  {|
  float u[8][8];
  void main() {
    int i;
    int j;
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) { u[i][j] = itof(i + j); }
    }
    print(u[3][4]);
  }
  |}

let test_hierarchical_subsumes () =
  let prog = Dca_ir.Lower.compile ~file:"<test>" nest_src in
  let info = Proginfo.analyze prog in
  let flat = Driver.analyze_program info in
  let hier = Driver.analyze_program ~hierarchical:true info in
  let count pred rs = List.length (List.filter pred rs) in
  Alcotest.(check int) "flat tests both" 2 (count Driver.is_commutative flat);
  Alcotest.(check int) "hierarchical keeps one commutative" 1 (count Driver.is_commutative hier);
  Alcotest.(check int) "inner is subsumed" 1
    (count (fun r -> match r.Driver.lr_decision with Driver.Subsumed _ -> true | _ -> false) hier);
  (* the subsumed loop names its commutative ancestor *)
  List.iter
    (fun r ->
      match r.Driver.lr_decision with
      | Driver.Subsumed parent ->
          Alcotest.(check bool) "ancestor is a real loop" true
            (List.exists (fun r' -> r'.Driver.lr_loop.Loops.l_id = parent) hier)
      | _ -> ())
    hier

let advisory_src =
  {|
  float a[64];
  float total;
  void main() {
    int i;
    int r;
    for (r = 0; r < 30; r = r + 1) {
      for (i = 0; i < 64; i = i + 1) { a[i] = a[i] + hrand(i + r * 100); }
    }
    total = 0.0;
    for (i = 0; i < 64; i = i + 1) { total = total + a[i]; }
    for (i = 1; i < 64; i = i + 1) { a[i] = a[i] + a[i - 1]; }
    print(total);
    print(a[63]);
  }
  |}

let advise_on src =
  let prog = Dca_ir.Lower.compile ~file:"<test>" src in
  let info = Proginfo.analyze prog in
  let profile = Dca_profiling.Depprof.profile_program info in
  let results = Driver.analyze_program info in
  (info, profile, results, Advisor.advise info profile results)

let test_advisor_recommendations () =
  let _, _, _, advices = advise_on advisory_src in
  let hot = List.hd advices in
  (* the hottest loop is the outer sweep and it should be parallelizable *)
  Alcotest.(check bool) "hot loop first" true (hot.Advisor.ad_coverage > 0.5);
  (match hot.Advisor.ad_recommendation with
  | Advisor.Parallelize | Advisor.Parallelize_with_review _ -> ()
  | _ -> Alcotest.failf "expected a parallelize recommendation, got: %s" (Advisor.to_string hot));
  Alcotest.(check bool) "pragma present" true (hot.Advisor.ad_pragma <> None);
  (* the prefix-sum loop must be kept sequential *)
  let seq =
    List.filter
      (fun a ->
        match a.Advisor.ad_recommendation with Advisor.Keep_sequential _ -> true | _ -> false)
      advices
  in
  Alcotest.(check bool) "an order-dependent loop is kept sequential" true (seq <> []);
  (* report renders *)
  Alcotest.(check bool) "report non-empty" true (String.length (Advisor.report advices) > 100)

let test_advisor_reduction_pragma () =
  let _, _, _, advices = advise_on advisory_src in
  let has_reduction_pragma =
    List.exists
      (fun a ->
        match a.Advisor.ad_pragma with
        | Some p ->
            let rec contains i =
              i + 9 <= String.length p && (String.sub p i 9 = "reduction" || contains (i + 1))
            in
            contains 0
        | None -> false)
      advices
  in
  Alcotest.(check bool) "total reduction clause suggested" true has_reduction_pragma

let test_codegen_annotation () =
  let prog = Dca_ir.Lower.compile ~file:"<test>" advisory_src in
  let info = Proginfo.analyze prog in
  let profile = Dca_profiling.Depprof.profile_program info in
  let results = Driver.analyze_program info in
  let plan =
    Dca_parallel.Planner.select ~machine:Dca_parallel.Machine.default info profile
      ~detected:(Driver.commutative_ids results) ~strategy:Dca_parallel.Planner.Best_benefit
  in
  let annotated = Dca_parallel.Codegen.annotate_source info ~source:advisory_src plan in
  let count_pragmas s =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           let l = String.trim l in
           String.length l >= 10 && String.sub l 0 10 = "// #pragma")
    |> List.length
  in
  Alcotest.(check int) "one pragma per planned loop" (List.length plan.Dca_parallel.Plan.plan_loops)
    (count_pragmas annotated);
  (* annotated text is a superset: stripping pragma lines recovers the source *)
  let stripped =
    String.split_on_char '\n' annotated
    |> List.filter (fun l ->
           let t = String.trim l in
           not (String.length t >= 10 && String.sub t 0 10 = "// #pragma"))
    |> String.concat "\n"
  in
  Alcotest.(check string) "source preserved" advisory_src stripped

let test_ir_verify_all_benchmarks () =
  List.iter
    (fun bm ->
      match Dca_ir.Ir_verify.verify_program (Dca_progs.Benchmark.compile bm) with
      | Ok () -> ()
      | Error problems ->
          Alcotest.failf "%s: %s" bm.Dca_progs.Benchmark.bm_name (String.concat "; " problems))
    Dca_progs.Registry.all

let test_ir_verify_catches_bad_target () =
  let prog = Dca_ir.Lower.compile ~file:"<test>" "void main() { printi(1); }" in
  let f = Dca_ir.Ir.find_func_exn prog "main" in
  (* corrupt: point the entry terminator out of range *)
  f.Dca_ir.Ir.fblocks.(0).Dca_ir.Ir.bterm <- Dca_ir.Ir.Br 999;
  match Dca_ir.Ir_verify.verify_program prog with
  | Ok () -> Alcotest.fail "expected a verification failure"
  | Error problems -> Alcotest.(check bool) "mentions the target" true
      (List.exists (fun m -> String.length m > 0) problems)

let extension_suites =
  [
    ( "dca-extensions",
      [
        Alcotest.test_case "hierarchical subsumption" `Quick test_hierarchical_subsumes;
        Alcotest.test_case "advisor recommendations" `Quick test_advisor_recommendations;
        Alcotest.test_case "advisor reduction pragma" `Quick test_advisor_reduction_pragma;
        Alcotest.test_case "codegen annotation" `Quick test_codegen_annotation;
        Alcotest.test_case "ir verify benchmarks" `Quick test_ir_verify_all_benchmarks;
        Alcotest.test_case "ir verify catches corruption" `Quick test_ir_verify_catches_bad_target;
      ] );
  ]

let suites = suites @ extension_suites

(* ---------------------------------------------------------------- *)
(* Future-work features: multi-input testing, per-invocation          *)
(* verdicts (context sensitivity), skeleton classification            *)
(* ---------------------------------------------------------------- *)

(* A loop whose commutativity depends on the input: the first integer of
   the input stream decides whether updates collide order-sensitively. *)
let input_dependent_src =
  {|
  int a[16];
  int mode;
  void main() {
    mode = reads();
    int i;
    for (i = 1; i < 16; i = i + 1) {
      if (mode == 1) {
        a[i] = a[i] + a[i - 1] + i;   // carried chain
      } else {
        a[i] = a[i] + i;              // disjoint updates
      }
    }
    printi(a[15]);
  }
  |}

let test_multi_input_refutes () =
  let prog = Dca_ir.Lower.compile ~file:"<test>" input_dependent_src in
  let info = Proginfo.analyze prog in
  let fi = Proginfo.func_info info "main" in
  let loop = List.hd (Loops.loops fi.Proginfo.fi_forest) in
  let sep = Iterator_rec.separate fi loop in
  let spec input = Commutativity.make_run_spec ~fuel:50_000_000 input in
  let benign = Commutativity.test_loop Commutativity.default_config info (spec [ 0 ]) fi sep in
  let hostile = Commutativity.test_loop Commutativity.default_config info (spec [ 1 ]) fi sep in
  Alcotest.(check bool) "benign input: commutative" true
    (benign.Commutativity.oc_verdict = Commutativity.Commutative);
  Alcotest.(check bool) "hostile input: refuted" true
    (match hostile.Commutativity.oc_verdict with Commutativity.Non_commutative _ -> true | _ -> false);
  (* combined testing over both inputs must be refuted (paper §V-D) *)
  let combined =
    Commutativity.test_loop_inputs Commutativity.default_config info [ spec [ 0 ]; spec [ 1 ] ] fi sep
  in
  Alcotest.(check bool) "combined inputs: refuted" true
    (match combined.Commutativity.oc_verdict with Commutativity.Non_commutative _ -> true | _ -> false);
  Alcotest.(check bool) "combined counts both runs" true (combined.Commutativity.oc_invocations >= 2)

(* Context sensitivity: the same loop commutative in one invocation and
   order-dependent in another. *)
let context_dependent_src =
  {|
  float a[16];
  int chain;
  void work() {
    int i;
    for (i = 1; i < 16; i = i + 1) {
      if (chain == 1) {
        a[i] = a[i] + a[i - 1];
      } else {
        a[i] = a[i] + 1.0;
      }
    }
  }
  void main() {
    chain = 0;
    work();          // first invocation: disjoint updates
    chain = 1;
    work();          // second invocation: carried chain
    print(a[15]);
  }
  |}

let test_per_invocation_verdicts () =
  let prog = Dca_ir.Lower.compile ~file:"<test>" context_dependent_src in
  let info = Proginfo.analyze prog in
  let fi = Proginfo.func_info info "work" in
  let loop = List.hd (Loops.loops fi.Proginfo.fi_forest) in
  let sep = Iterator_rec.separate fi loop in
  let outcome =
    Commutativity.test_loop Commutativity.default_config info Commutativity.default_run_spec fi sep
  in
  (* the aggregate verdict is refuted ... *)
  Alcotest.(check bool) "aggregate refuted" true
    (match outcome.Commutativity.oc_verdict with Commutativity.Non_commutative _ -> true | _ -> false);
  (* ... and the per-invocation trail shows the mixed contexts *)
  match outcome.Commutativity.oc_per_invocation with
  | [ first; second ] ->
      Alcotest.(check bool) "first context commutative" true (first = Commutativity.Commutative);
      Alcotest.(check bool) "second context flagged" true (second <> Commutativity.Commutative)
  | l -> Alcotest.failf "expected 2 invocation verdicts, got %d" (List.length l)

let skeleton_of src =
  let prog = Dca_ir.Lower.compile ~file:"<test>" src in
  let info = Proginfo.analyze prog in
  (* prover off: skeleton classification consumes the dynamic outcome *)
  let results = Driver.analyze_program ~static:false info in
  let r =
    List.find
      (fun r -> Driver.is_commutative r && r.Driver.lr_loop.Loops.l_depth = 1)
      results
  in
  let fi = Proginfo.func_info info r.Driver.lr_loop.Loops.l_func in
  Skeleton.classify info fi (Option.get r.Driver.lr_outcome)

let test_skeleton_map () =
  let sk = skeleton_of "int a[16]; void main() { int i; for (i = 0; i < 16; i = i + 1) { a[i] = i; } printi(a[3]); }" in
  Alcotest.(check string) "map" "map" (Skeleton.shape_to_string sk.Skeleton.sk_shape);
  Alcotest.(check bool) "not pointer based" false sk.Skeleton.sk_pointer_based

let test_skeleton_reduction () =
  let sk =
    skeleton_of
      "float a[16]; float t; void main() { int i; for (i = 0; i < 16; i = i + 1) { t = t + a[i]; } print(t); }"
  in
  match sk.Skeleton.sk_shape with
  | Skeleton.Reduction { histogram = false } -> ()
  | s -> Alcotest.failf "expected reduction, got %s" (Skeleton.shape_to_string s)

let test_skeleton_histogram () =
  let sk =
    skeleton_of
      "int h[8]; int k[64]; void main() { int i; for (i = 0; i < 64; i = i + 1) { h[k[i] % 8] = h[k[i] % 8] + 1; } printi(h[1]); }"
  in
  match sk.Skeleton.sk_shape with
  | Skeleton.Reduction { histogram = true } -> ()
  | s -> Alcotest.failf "expected histogram, got %s" (Skeleton.shape_to_string s)

let test_skeleton_worklist_and_plds () =
  let prog = Dca_progs.Benchmark.compile (Dca_progs.Registry.find_exn "treeadd") in
  let info = Proginfo.analyze prog in
  let results = Driver.analyze_program info in
  let r =
    List.find
      (fun r -> r.Driver.lr_loop.Loops.l_func = "tree_add" && Driver.is_commutative r)
      results
  in
  let fi = Proginfo.func_info info "tree_add" in
  let sk = Skeleton.classify info fi (Option.get r.Driver.lr_outcome) in
  Alcotest.(check string) "worklist" "worklist" (Skeleton.shape_to_string sk.Skeleton.sk_shape);
  Alcotest.(check bool) "pointer based" true sk.Skeleton.sk_pointer_based

let test_skeleton_plds_map () =
  let sk =
    skeleton_of
      {|
      struct node { float v; struct node *next; }
      struct node *head;
      void main() {
        int i;
        for (i = 0; i < 8; i = i + 1) {
          struct node *n = new struct node;
          n->v = hrand(i);
          n->next = head;
          head = n;
        }
        struct node *p = head;
        while (p) { p->v = p->v * 2.0; p = p->next; }
        print(head->v);
      }
      |}
  in
  ignore sk;
  (* note: [p->v = p->v * 2.0] is textually a product RMW, so the loop
     below uses a plain overwrite to exercise the Map class *)
  (* classify the while loop specifically *)
  let prog =
    Dca_ir.Lower.compile ~file:"<test>"
      {|
      struct node { float v; struct node *next; }
      struct node *head;
      void build() {
        int i;
        for (i = 0; i < 8; i = i + 1) {
          struct node *n = new struct node;
          n->v = hrand(i);
          n->next = head;
          head = n;
        }
      }
      void main() {
        build();
        struct node *p = head;
        int k = 0;
        while (p) { p->v = hrand(k) * 2.0; k = k + 1; p = p->next; }
        print(head->v);
      }
      |}
  in
  let info = Proginfo.analyze prog in
  let results = Driver.analyze_program info in
  let r = List.find (fun r -> r.Driver.lr_loop.Loops.l_func = "main") results in
  let fi = Proginfo.func_info info "main" in
  let sk = Skeleton.classify info fi (Option.get r.Driver.lr_outcome) in
  Alcotest.(check string) "plds map" "map" (Skeleton.shape_to_string sk.Skeleton.sk_shape);
  Alcotest.(check bool) "pointer based" true sk.Skeleton.sk_pointer_based

let future_suites =
  [
    ( "dca-future-work",
      [
        Alcotest.test_case "multi-input refutation" `Quick test_multi_input_refutes;
        Alcotest.test_case "per-invocation contexts" `Quick test_per_invocation_verdicts;
        Alcotest.test_case "skeleton: map" `Quick test_skeleton_map;
        Alcotest.test_case "skeleton: reduction" `Quick test_skeleton_reduction;
        Alcotest.test_case "skeleton: histogram" `Quick test_skeleton_histogram;
        Alcotest.test_case "skeleton: worklist" `Quick test_skeleton_worklist_and_plds;
        Alcotest.test_case "skeleton: plds map" `Quick test_skeleton_plds_map;
      ] );
  ]

let suites = suites @ future_suites
