(** BT — Block Tridiagonal solver (NPB).

    Alternating-direction implicit structure: RHS stencil population
    (parallel), then per-direction line solves — the loop {e across}
    lines is parallel while the Thomas elimination {e along} each line is
    sequential.  Line solves run behind function calls that write global
    state, which defeats the call-free/pure-call static baselines while
    DCA tests the loops uniformly (paper §V-B1: BT 168/182 for the
    dynamic tools vs 80 combined static). *)

let source =
  {|
// NPB BT kernel, MiniC port (ADI line solves on a 2-D grid).
int   n;
float u[20][20];
float rhs[20][20];
float lhs_a[20];
float lhs_b[20];
float lhs_c[20];
float forcing[20][20];
float qs[20][20];
float square[20][20];
float errs[20];
float dt;
float sums;
float rhsnorm;
int   verified;

float exact(int i, int j) {
  return sin(0.3 * itof(i)) * cos(0.2 * itof(j));
}

void init_grid() {
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      u[i][j] = exact(i, j);
      forcing[i][j] = 0.05 * exact(j, i);
    }
  }
}

void compute_rhs() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      rhs[i][j] = forcing[i][j]
        + dt * (u[i + 1][j] - 2.0 * u[i][j] + u[i - 1][j])
        + dt * (u[i][j + 1] - 2.0 * u[i][j] + u[i][j - 1]);
    }
  }
}

// exact forcing so the discrete solution stays near the analytic one
void exact_rhs() {
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      forcing[i][j] = 0.05 * exact(j, i) + 0.01 * sin(0.1 * itof(i * j));
    }
  }
}

// auxiliary quadratic fields, as BT's compute_rhs precomputes
void compute_aux() {
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      square[i][j] = u[i][j] * u[i][j];
      qs[i][j] = square[i][j] / (1.0 + fabs(u[i][j]));
    }
  }
}

// dissipation pass using the auxiliary fields
void add_dissipation() {
  int i;
  int j;
  for (i = 2; i < n - 2; i = i + 1) {
    for (j = 2; j < n - 2; j = j + 1) {
      rhs[i][j] = rhs[i][j]
        - 0.02 * (square[i - 2][j] + square[i + 2][j] + square[i][j - 2] + square[i][j + 2]
                  - 4.0 * qs[i][j]);
    }
  }
}

// per-row error against the exact solution (rows independent)
void error_norm() {
  int i;
  for (i = 0; i < n; i = i + 1) {
    float s = 0.0;
    int j;
    for (j = 0; j < n; j = j + 1) {
      float d = u[i][j] - exact(i, j);
      s = s + d * d;
    }
    errs[i] = sqrt(s / itof(n));
  }
}

float rhs_norm() {
  float s = 0.0;
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) { s = s + rhs[i][j] * rhs[i][j]; }
  }
  return sqrt(s);
}

// Thomas algorithm along direction x for one line j: sequential in i
void x_solve_line(int j) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    lhs_a[i] = -0.1;
    lhs_b[i] = 1.2;
    lhs_c[i] = -0.1;
  }
  // forward elimination
  for (i = 1; i < n - 1; i = i + 1) {
    float m = lhs_a[i] / lhs_b[i - 1];
    lhs_b[i] = lhs_b[i] - m * lhs_c[i - 1];
    rhs[i][j] = rhs[i][j] - m * rhs[i - 1][j];
  }
  // back substitution
  for (i = n - 3; i > 0; i = i - 1) {
    rhs[i][j] = (rhs[i][j] - lhs_c[i] * rhs[i + 1][j]) / lhs_b[i];
  }
}

void y_solve_line(int i) {
  int j;
  for (j = 0; j < n; j = j + 1) {
    lhs_a[j] = -0.1;
    lhs_b[j] = 1.2;
    lhs_c[j] = -0.1;
  }
  for (j = 1; j < n - 1; j = j + 1) {
    float m = lhs_a[j] / lhs_b[j - 1];
    lhs_b[j] = lhs_b[j] - m * lhs_c[j - 1];
    rhs[i][j] = rhs[i][j] - m * rhs[i][j - 1];
  }
  for (j = n - 3; j > 0; j = j - 1) {
    rhs[i][j] = (rhs[i][j] - lhs_c[j] * rhs[i][j + 1]) / lhs_b[j];
  }
}

void x_solve() {
  // parallel across lines
  int j;
  for (j = 1; j < n - 1; j = j + 1) { x_solve_line(j); }
}

void y_solve() {
  int i;
  for (i = 1; i < n - 1; i = i + 1) { y_solve_line(i); }
}

void add() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) { u[i][j] = u[i][j] + rhs[i][j]; }
  }
}

void adi() {
  compute_aux();
  compute_rhs();
  add_dissipation();
  x_solve();
  y_solve();
  add();
}

void main() {
  n = 20;
  init_grid();
  exact_rhs();
  int step;
  for (step = 0; step < 3; step = step + 1) {
    dt = 0.1 + 0.02 * itof(step);
    adi();
  }
  rhsnorm = rhs_norm();
  error_norm();
  sums = 0.0;
  int i;
  int j;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { sums = sums + u[i][j] * u[i][j]; }
  }
  float errsum = 0.0;
  for (i = 0; i < n; i = i + 1) { errsum = errsum + errs[i]; }
  verified = 0;
  if (sums > 0.0 && errsum >= 0.0) { verified = 1; }
  print(sums);
  print(rhsnorm);
  print(errsum);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"BT" ~suite:Benchmark.Npb
       ~description:"ADI block-tridiagonal line solves over a 2-D grid" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.In_func "init_grid";
        Benchmark.In_func "exact_rhs";
        Benchmark.In_func "compute_aux";
        Benchmark.In_func "compute_rhs";
        Benchmark.In_func "add_dissipation";
        Benchmark.Outermost "x_solve";
        Benchmark.Outermost "y_solve";
        Benchmark.In_func "add";
        Benchmark.Outermost "error_norm";
        Benchmark.In_func "rhs_norm";
        Benchmark.Nth_in_func ("main", 1) (* checksum nest *);
      ];
    bm_expert_sections =
      [
        [ Benchmark.Outermost "x_solve"; Benchmark.Outermost "y_solve"; Benchmark.In_func "add" ];
        [ Benchmark.In_func "compute_aux"; Benchmark.In_func "compute_rhs"; Benchmark.In_func "add_dissipation" ];
      ];
    bm_expert_extra = 0.0 (* paper: DCA extracts all available BT parallelism *);
    bm_known_sequential =
      [
        Benchmark.Nth_in_func ("x_solve_line", 1);
        Benchmark.Nth_in_func ("x_solve_line", 2);
        Benchmark.Nth_in_func ("y_solve_line", 1);
        Benchmark.Nth_in_func ("y_solve_line", 2);
        Benchmark.Nth_in_func ("main", 0) (* time stepping *);
      ];
  }
