(* Tests for lowering and CFG construction. *)

open Dca_frontend
open Dca_ir

let compile src = Lower.compile ~file:"<test>" src

let func_named p name = Ir.find_func_exn p name

let count_instrs pred f =
  Array.fold_left
    (fun acc blk -> acc + List.length (List.filter (fun i -> pred i.Ir.idesc) blk.Ir.instrs))
    0 f.Ir.fblocks

let test_lower_simple_loop () =
  let p =
    compile
      {|
      float a[10];
      void main() {
        int i;
        for (i = 0; i < 10; i = i + 1) { a[i] = a[i] + 1.0; }
      }
      |}
  in
  let main = func_named p "main" in
  let cfg = Cfg.of_func main in
  (* entry, header, body, step, exit at minimum *)
  Alcotest.(check bool) "at least 5 reachable blocks" true (List.length (Cfg.reverse_postorder cfg) >= 5);
  let loads = count_instrs (function Ir.Load _ -> true | _ -> false) main in
  let stores = count_instrs (function Ir.Store _ -> true | _ -> false) main in
  Alcotest.(check int) "one load in body" 1 loads;
  Alcotest.(check int) "one store in body" 1 stores

let test_lower_plds_loop () =
  let p =
    compile
      {|
      struct node { int val; struct node *next; }
      struct node *head;
      void main() {
        struct node *p = head;
        while (p) { p->val = p->val + 1; p = p->next; }
      }
      |}
  in
  let main = func_named p "main" in
  let geps = count_instrs (function Ir.Gep _ -> true | _ -> false) main in
  Alcotest.(check bool) "field addressing uses gep" true (geps >= 2)

let test_lower_multidim () =
  let p =
    compile
      {|
      float u[3][4][5];
      void main() {
        u[1][2][3] = 7.0;
      }
      |}
  in
  let main = func_named p "main" in
  (* Expect geps with scales 20 (for [1]), 5 (for [2]), 1 (for [3]). *)
  let scales =
    Array.fold_left
      (fun acc blk ->
        List.fold_left
          (fun acc i -> match i.Ir.idesc with Ir.Gep (_, _, _, s) -> s :: acc | _ -> acc)
          acc blk.Ir.instrs)
      [] main.Ir.fblocks
    |> List.sort compare
  in
  Alcotest.(check (list int)) "gep scales" [ 1; 5; 20 ] scales

let test_lower_short_circuit () =
  let p =
    compile
      {|
      void main() {
        int x = 1;
        int y = 0;
        if (x > 0 && y > 0) { printi(1); }
      }
      |}
  in
  let main = func_named p "main" in
  let cfg = Cfg.of_func main in
  (* && introduces a diamond: more than the plain if's blocks *)
  Alcotest.(check bool) "short-circuit blocks" true (List.length (Cfg.reverse_postorder cfg) >= 6)

let test_lower_break_continue () =
  let p =
    compile
      {|
      void main() {
        int i = 0;
        int n = 0;
        while (1) {
          i = i + 1;
          if (i > 10) { break; }
          if (i % 2 == 0) { continue; }
          n = n + i;
        }
        printi(n);
      }
      |}
  in
  let main = func_named p "main" in
  let cfg = Cfg.of_func main in
  (* The loop must terminate through the break edge; exit blocks reachable. *)
  Alcotest.(check bool) "has an exit" true (Cfg.exit_blocks cfg <> [])

let test_global_init () =
  let p = compile "int g = 42; float h = -1.5; void main() { printi(g); }" in
  let inits =
    Array.to_list p.Ir.p_globals
    |> List.map (fun g -> g.Ir.g_init)
  in
  Alcotest.(check bool) "g init" true (List.mem (Some (Ir.Oint 42)) inits);
  Alcotest.(check bool) "h init" true (List.mem (Some (Ir.Ofloat (-1.5))) inits)

let test_layout () =
  let p =
    compile
      {|
      struct inner { int a; float b; }
      struct outer { int x; struct inner in; struct inner *ptr; }
      void main() { }
      |}
  in
  let l = p.Ir.p_layout in
  Alcotest.(check int) "inner size" 2 (Layout.size l (Ast.Tstruct "inner"));
  Alcotest.(check int) "outer size" 4 (Layout.size l (Ast.Tstruct "outer"));
  Alcotest.(check int) "field offset of in" 1 (Layout.field_offset l "outer" 1);
  Alcotest.(check int) "field offset of ptr" 3 (Layout.field_offset l "outer" 2);
  Alcotest.(check int) "array size" 24 (Layout.size l (Ast.Tarray (Ast.Tstruct "inner", [ 3; 4 ])))

let test_cfg_rpo_starts_at_entry () =
  let p = compile "void main() { int i = 0; while (i < 3) { i = i + 1; } }" in
  let cfg = Cfg.of_func (func_named p "main") in
  match Cfg.reverse_postorder cfg with
  | e :: _ -> Alcotest.(check int) "entry first" (Cfg.entry cfg) e
  | [] -> Alcotest.fail "empty rpo"

let test_printer_stable () =
  let src = "float a[4]; void main() { int i; for (i = 0; i < 4; i = i + 1) { a[i] = 0.5; } }" in
  let s1 = Ir_printer.program_to_string (compile src) in
  let s2 = Ir_printer.program_to_string (compile src) in
  let contains_substring haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check string) "deterministic lowering" s1 s2;
  Alcotest.(check bool) "mentions gep" true (contains_substring s1 "gep")

let suites =
  [
    ( "lower",
      [
        Alcotest.test_case "simple loop" `Quick test_lower_simple_loop;
        Alcotest.test_case "plds loop" `Quick test_lower_plds_loop;
        Alcotest.test_case "multidim arrays" `Quick test_lower_multidim;
        Alcotest.test_case "short circuit" `Quick test_lower_short_circuit;
        Alcotest.test_case "break/continue" `Quick test_lower_break_continue;
        Alcotest.test_case "global init" `Quick test_global_init;
      ] );
    ( "layout+cfg",
      [
        Alcotest.test_case "layout" `Quick test_layout;
        Alcotest.test_case "rpo entry" `Quick test_cfg_rpo_starts_at_entry;
        Alcotest.test_case "printer stable" `Quick test_printer_stable;
      ] );
  ]

(* Golden IR: the exact lowering of the paper's Fig. 1(b) loop.  Guards
   against silent changes in lowering shape, which the DCA engine's slice
   machinery depends on. *)
let test_golden_plds_ir () =
  let p =
    compile
      {|
struct node { int val; struct node *next; }
struct node *head;
void main() {
  struct node *ptr = head;
  while (ptr) {
    ptr->val = ptr->val + 1;
    ptr = ptr->next;
  }
}
|}
  in
  let expected =
    "func main() : void {\n\
     b0:\n\
    \  %t0 = gload @head\n\
    \  ptr = %t0\n\
    \  br b1\n\
     b1:\n\
    \  %t1 = cmp!= ptr, null\n\
    \  cbr %t1, b2, b3\n\
     b2:\n\
    \  %t2 = gep ptr, 0 x1\n\
    \  %t3 = gep ptr, 0 x1\n\
    \  %t4 = load %t3\n\
    \  %t5 = add %t4, 1\n\
    \  store %t2, %t5\n\
    \  %t6 = gep ptr, 1 x1\n\
    \  %t7 = load %t6\n\
    \  ptr = %t7\n\
    \  br b1\n\
     b3:\n\
    \  ret\n\
     }\n"
  in
  Alcotest.(check string) "golden IR" expected
    (Ir_printer.func_to_string (func_named p "main"))

let golden_suites =
  [ ("golden-ir", [ Alcotest.test_case "fig1b lowering" `Quick test_golden_plds_ir ]) ]

let suites = suites @ golden_suites
