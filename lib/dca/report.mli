(** Human-readable reports of DCA results (the "auxiliary reports" of
    paper §IV-A4). *)

type provenance = Dynamic | Static
(** How a verdict was established.  [Dynamic] — the record/replay stage
    of this reproduction actually ran (today's only producer).  [Static]
    is reserved for the planned static fast-path (affine
    dependence-distance and DILD-step proofs, see ROADMAP): a verdict
    proved without running.  The serve daemon's verdict cache stores a
    provenance with every entry, so statically-proved verdicts will slot
    in beside dynamic ones without a cache-format change.  Provenance is
    metadata — it never appears in {!to_string} output, which must stay
    byte-identical between a cached and a freshly computed result. *)

val provenance_to_string : provenance -> string

val summary_line : Driver.loop_result -> string
(** One line per loop: label, depth, decision, and the tested-invocation
    annotation for loops that reached the dynamic stage. *)

val counters : Driver.loop_result list -> (string * int) list
(** Work counters aggregated from the outcome records, in a fixed order:
    loop totals by decision, then the dynamic-stage effort (invocations,
    golden runs, replays, replay steps, skipped schedules, escalated
    loops, promotions).  A pure fold over the results — deterministic
    across worker counts and checkpoint modes, and available whether or
    not {!Dca_support.Telemetry} counting is enabled. *)

val footer_line : Driver.loop_result list -> string
(** [counters] rendered as the stable machine-readable report footer:
    ["counters: loops=7 commutative=3 ..."]. *)

val to_string : Driver.loop_result list -> string
(** Header, one {!summary_line} per loop, then {!footer_line}. *)

val print : Driver.loop_result list -> unit
