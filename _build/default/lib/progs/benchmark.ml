(** Benchmark description record shared by the NPB-style and PLDS-style
    MiniC ports (DESIGN.md §2: each port preserves the loop-population
    character of the original — the idioms that distinguish the detection
    tools — at a workload size an interpreter handles).

    Loop annotations (expert parallel selections for Figs. 6–7, expert
    fusion groups, intentionally order-dependent loops for Table IV's
    ground truth) reference loops structurally rather than by brittle
    source line: by function, optionally filtered by nesting depth. *)

open Dca_analysis

(** Structural reference to a set of loops. *)
type loop_ref =
  | In_func of string  (** every loop of the function *)
  | Outermost of string  (** depth-1 loops of the function *)
  | At_depth of string * int  (** loops of the function at this depth *)
  | Nth_in_func of string * int  (** n-th loop of the function, in program order (0-based) *)

type suite = Npb | Plds

type t = {
  bm_name : string;
  bm_suite : suite;
  bm_description : string;
  bm_source : string;  (** MiniC source *)
  bm_input : int list;  (** [reads()] stream *)
  bm_expert_loops : loop_ref list;  (** expert loop-level parallelization (Fig. 7 "Loop-only") *)
  bm_expert_sections : loop_ref list list;  (** fused parallel sections (Fig. 7 "Expert Manual") *)
  bm_expert_extra : float;  (** fraction of remaining serial time the full expert
                                parallelization additionally covers (pipelining,
                                work-sharing restructuring) *)
  bm_expert_workers : int;  (** effective workers for that extra fraction *)
  bm_known_sequential : loop_ref list;
      (** ground truth: loops written to be genuinely order-dependent *)
}

let default ~name ~suite ~description ~source =
  {
    bm_name = name;
    bm_suite = suite;
    bm_description = description;
    bm_source = source;
    bm_input = [];
    bm_expert_loops = [];
    bm_expert_sections = [];
    bm_expert_extra = 0.0;
    bm_expert_workers = 8;
    bm_known_sequential = [];
  }

let compile bm = Dca_ir.Lower.compile ~file:(bm.bm_name ^ ".mc") bm.bm_source

(* ------------------------------------------------------------------ *)
(* Loop reference resolution                                           *)
(* ------------------------------------------------------------------ *)

let matches_ref info r (loop : Loops.loop) =
  ignore info;
  match r with
  | In_func f -> loop.Loops.l_func = f
  | Outermost f -> loop.Loops.l_func = f && loop.Loops.l_depth = 1
  | At_depth (f, d) -> loop.Loops.l_func = f && loop.Loops.l_depth = d
  | Nth_in_func (f, n) -> (
      loop.Loops.l_func = f
      &&
      let in_func =
        List.filter (fun (_, l) -> l.Loops.l_func = f) (Proginfo.all_loops info)
        |> List.map snd
        |> List.sort (fun a b -> compare a.Loops.l_header b.Loops.l_header)
      in
      match List.nth_opt in_func n with
      | Some l -> l.Loops.l_id = loop.Loops.l_id
      | None -> false)

let resolve info refs =
  Proginfo.all_loops info
  |> List.filter_map (fun (_, loop) ->
         if List.exists (fun r -> matches_ref info r loop) refs then Some loop.Loops.l_id else None)

let loop_ref_to_string = function
  | In_func f -> Printf.sprintf "loops of %s" f
  | Outermost f -> Printf.sprintf "outermost loops of %s" f
  | At_depth (f, d) -> Printf.sprintf "depth-%d loops of %s" d f
  | Nth_in_func (f, n) -> Printf.sprintf "loop #%d of %s" n f
