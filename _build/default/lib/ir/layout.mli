open Dca_frontend
(** Memory layout of MiniC types over the cell-addressed heap.

    Scalars and pointers occupy one cell each; a struct value occupies the
    concatenation of its fields; an array occupies element-size × product of
    its dimensions, row-major. *)

type t

type cellkind = KInt | KFloat | KPtr

val create : Ast.struct_def list -> t
(** Precompute layouts for the program's struct definitions.  Raises
    [Invalid_argument] on unknown or value-recursive structs. *)

val size : t -> Ast.ty -> int
(** Size in cells.  [size t Tvoid = 0]. *)

val field_offset : t -> string -> int -> int
(** [field_offset t sname i] is the cell offset of field [i] of struct
    [sname]. *)

val field_type : t -> string -> int -> Ast.ty

val num_fields : t -> string -> int

val cell_kinds : t -> Ast.ty -> cellkind array
(** Kinds of the cells of one element of the type, used to zero-initialize
    fresh blocks with correctly-typed values. *)
