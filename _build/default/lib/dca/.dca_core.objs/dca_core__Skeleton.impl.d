lib/dca/skeleton.ml: Commutativity Dca_analysis Dca_frontend Dca_ir Dca_parallel Dca_support Ir Iterator_rec List Loops Memred Pdg Printf Proginfo Scalars String
