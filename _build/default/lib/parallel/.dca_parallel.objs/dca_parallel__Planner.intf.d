lib/parallel/planner.mli: Dca_analysis Dca_profiling Machine Plan
