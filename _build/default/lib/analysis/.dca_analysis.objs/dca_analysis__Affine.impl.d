lib/analysis/affine.ml: Array Cfg Dca_frontend Dca_ir Dca_support Format Hashtbl Intset Ir List Loops Printf String
