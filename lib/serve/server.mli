(** Unix-domain-socket transport for the serve {!Engine}, plus the
    self-healing supervision layer (DESIGN.md §15).

    One accept loop feeding [sv_workers] worker domains: each worker
    owns one connection at a time and answers its request lines in
    order, so per-connection replies stay sequential while the daemon
    serves many connections concurrently.  The engine underneath is
    concurrency-safe (per-request telemetry contexts, a locked verdict
    cache, an exclusive gate for fault-carrying requests), so every
    reply is byte-identical to a serial daemon's.  [sv_workers = 1]
    recovers the old one-connection-at-a-time behavior.

    Supervision: connections beyond [sv_max_queue] are shed with an
    immediate [busy] reply; a request running past
    [sv_request_timeout_ms] has its reply replaced by a structured
    error (the engine call finishes on its own — verdicts must never
    depend on timing); a worker domain that dies mid-request
    busy-replies the in-flight request and is respawned by a supervisor
    domain; SIGTERM/SIGINT (with [sv_handle_signals]) trigger a
    graceful drain bounded by [sv_drain_timeout_s].  Each defense ticks
    its own counter ([dca_requests_shed_total],
    [dca_requests_timeout_total], [dca_worker_restarts_total],
    [dca_slow_requests_total]). *)

type config = {
  sv_socket : string;  (** Unix-domain socket path *)
  sv_cache_dir : string option;  (** persistent cache directory ({!Vcache}) *)
  sv_cache_capacity : int option;
  sv_sessions : int;  (** warm-session LRU bound *)
  sv_jobs : int option;  (** default pool width for requests without one *)
  sv_workers : int;  (** connections served concurrently (default 4) *)
  sv_access_log : string option;
      (** JSONL access log, one object per request (appended); each
          entry carries the server-assigned [req] id also found in the
          reply's [rp_req] and the request's trace span.  Timed-out
          requests log status ["timeout"]; requests slower than
          [sv_slow_request_ms] carry ["slow": true]. *)
  sv_metrics_file : string option;
      (** Prometheus-style {!Metrics.exposition}, atomically rewritten
          (temp + rename) after every request and on shutdown — a
          scrape target.  A file that stops being writable is logged
          once to stderr and otherwise ignored. *)
  sv_max_requests : int option;
      (** stop after serving this many requests — tests and smoke runs.
          Exact under concurrency and crashes: admission reserves a
          budget slot before the engine runs, completions are counted
          once, and a crashed request still consumes its slot (its
          reply is the [busy] the supervision layer sent). *)
  sv_max_queue : int;
      (** overload bound (default 64): a connection accepted while this
          many are already queued gets an immediate [busy] reply and is
          closed — nothing was admitted, so a retry is always safe *)
  sv_request_timeout_ms : int option;
      (** per-request reply deadline, enforced by a watchdog domain:
          past it the client gets an error reply ("request timed out
          after N ms") and the connection is closed, while the engine
          call runs to completion server-side *)
  sv_drain_timeout_s : float;
      (** graceful-drain bound (default 30s): in-flight workers still
          running past it are abandoned with a stderr note instead of
          blocking the exit forever *)
  sv_slow_request_ms : int option;
      (** threshold for the ["slow"] access-log marker and the
          [dca_slow_requests_total] counter *)
  sv_handle_signals : bool;
      (** install SIGTERM/SIGINT handlers that trigger a graceful
          drain: stop accepting, finish in-flight requests, flush the
          metrics file, remove the socket, return normally.  Default
          [false] — embedders (tests) opt in. *)
}

val default_config : string -> config
(** Defaults for the given socket path: memory-only cache, 8 warm
    sessions, 4 workers, queue bound 64, no request timeout, 30s drain
    budget, no access log, no metrics file, no signal handling, serve
    until [shutdown]. *)

val run : config -> int
(** Bind (reclaiming a stale socket file from a crashed daemon first,
    but never a live one), then serve until a [shutdown] request, the
    request budget is exhausted, or a drain signal arrives.  Returns
    the number of requests served (admitted requests exactly — crashed
    and timed-out requests count, shed connections do not).  The socket
    file is removed and all warm sessions closed on the way out, also
    on exception.  SIGPIPE is ignored for the daemon's lifetime: a
    client hanging up mid-reply surfaces as a swallowed [EPIPE], never
    a dead daemon. *)
