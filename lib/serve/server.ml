(* Unix-domain-socket transport for the serve engine, with a
   self-healing supervision layer (DESIGN.md §15).

   One accept loop feeding a pool of worker domains: accepted
   connections are queued; each worker owns one connection at a time
   and serves its request lines in order, so per-connection replies are
   sequential while the daemon as a whole serves [sv_workers]
   connections concurrently.  The engine underneath is concurrency-safe
   (per-request telemetry contexts, a locked verdict cache, a
   writer-priority gate for fault-carrying requests), so replies are
   byte-identical to a serial daemon's.

   Request admission is a reservation: a worker reserves a budget slot
   under the state lock *before* handing the line to the engine and
   counts the completion exactly once afterwards — with [--max-requests n]
   the daemon serves exactly [n] requests no matter how many
   connections race for the tail of the budget, and a crashed request
   still consumes the slot it reserved.  Once stopped (budget
   exhausted or a [shutdown] request), the accept loop is woken by a
   dummy connect and every active connection is read-shutdown so a
   worker blocked on an idle persistent connection cannot stall the
   exit.

   The supervision layer adds four defenses, each observable through
   the metrics plane:

   - *Overload shedding.*  The accept loop bounds the connection queue
     at [sv_max_queue]; beyond it a connection gets an immediate [busy]
     reply and is closed ([dca_requests_shed_total]).  Nothing was
     admitted, so a client retry is always safe.

   - *Request timeouts.*  With [sv_request_timeout_ms] a watchdog
     domain scans the in-flight registry and replaces the reply of an
     overdue request with a structured error, then shuts the
     connection ([dca_requests_timeout_total]).  The engine call is
     *not* interrupted: it runs to natural completion so its verdicts
     stay correct and cacheable — only the reply is forfeited.  Reply
     ownership is decided by winning the Running→Replied/Timed_out
     transition under the request's own lock, so exactly one side ever
     writes, and the watchdog only touches a descriptor while holding
     that lock (the worker cannot close it concurrently).

   - *Worker crash recovery.*  An exception that escapes a worker's
     serving loop (the [serve.worker] fault site models this) ends the
     domain: its last rites give the in-flight request a [busy] reply —
     retrying clients converge to byte-identical reports — close the
     connection, and hand the slot to a supervisor domain, which joins
     the corpse and spawns a replacement
     ([dca_worker_restarts_total]).

   - *Graceful drain.*  With [sv_handle_signals], SIGTERM/SIGINT set an
     atomic flag and poke the accept loop (nothing that could deadlock
     a handler): the daemon stops accepting, lets in-flight requests
     finish — bounded by [sv_drain_timeout_s] — flushes the metrics
     file, removes the socket, and returns normally.

   Every request is wrapped in a Telemetry span carrying the
   server-assigned request id and appended to the JSONL access log (one
   object per request: timestamp, ids, op, program, status,
   loop/hit/miss counts, elapsed time, and a ["slow"] marker past
   [sv_slow_request_ms]), and the metrics exposition is rewritten to
   [sv_metrics_file] (atomically, temp + rename) after every request —
   the same id threads the access log, the trace, and the reply
   ([rp_req]), so one request can be followed across all three sinks.
   A metrics file that stops being writable (full disk, revoked
   permissions) is logged once and otherwise ignored. *)

module Faultpoint = Dca_support.Faultpoint

(* Fault site inside the worker's serving loop, hit with a request in
   flight: an injected raise models a worker-domain crash and must take
   the busy-reply + respawn path, never the whole daemon. *)
let fp_worker = Faultpoint.site "serve.worker"

type config = {
  sv_socket : string;
  sv_cache_dir : string option;
  sv_cache_capacity : int option;
  sv_sessions : int;
  sv_jobs : int option;
  sv_workers : int;  (* concurrent connections served; 1 = the old serial daemon *)
  sv_access_log : string option;
  sv_metrics_file : string option;  (* Prometheus-style exposition, rewritten per request *)
  sv_max_requests : int option;  (* stop after N requests: tests, smoke runs *)
  sv_max_queue : int;  (* shed (busy-reply) connections beyond this queue depth *)
  sv_request_timeout_ms : int option;  (* watchdog bound on a single request's reply *)
  sv_drain_timeout_s : float;  (* graceful-exit bound on in-flight stragglers *)
  sv_slow_request_ms : int option;  (* access-log + counter threshold *)
  sv_handle_signals : bool;  (* SIGTERM/SIGINT trigger a graceful drain *)
}

let default_config socket =
  {
    sv_socket = socket;
    sv_cache_dir = None;
    sv_cache_capacity = None;
    sv_sessions = 8;
    sv_jobs = None;
    sv_workers = 4;
    sv_access_log = None;
    sv_metrics_file = None;
    sv_max_requests = None;
    sv_max_queue = 64;
    sv_request_timeout_ms = None;
    sv_drain_timeout_s = 30.;
    sv_slow_request_ms = None;
    sv_handle_signals = false;
  }

(* A leftover socket file from a crashed daemon would make bind fail.
   Only reclaim the path if nothing answers on it — a live daemon's
   socket is left alone and surfaces as an address-in-use error. *)
let reclaim_stale_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if not live then try Sys.remove path with Sys_error _ -> ()
  end

let program_name = function
  | Some (Protocol.Named n) -> n
  | Some (Protocol.Inline { file; _ }) -> file ^ " (inline)"
  | None -> ""

(* The reply to an in-flight request has exactly one writer, decided by
   who wins the [Running] → terminal transition under [if_lock]: the
   worker (normal reply), the watchdog (timeout error), or the crashed
   worker's last rites (busy).  The losers never touch the channel, and
   the descriptor is only closed by the worker after its transition
   attempt resolved — so the watchdog can never write into a recycled
   fd. *)
type req_state = Running | Replied | Timed_out

type inflight = {
  if_id : int;  (* client-side request id, echoed in the substitute reply *)
  if_fd : Unix.file_descr;
  if_start_ns : int;
  if_lock : Mutex.t;
  mutable if_state : req_state;
}

(* One per worker domain, reused across respawns: the supervisor joins
   the dead domain and installs its replacement in the same slot. *)
type slot = {
  mutable s_domain : unit Domain.t option;
  mutable s_fd : Unix.file_descr option;  (* connection being served (under st.lock) *)
  mutable s_inflight : (Protocol.request * inflight) option;  (* under st.lock *)
}

type state = {
  engine : Engine.t;
  cfg : config;
  lock : Mutex.t;
  cond : Condition.t;  (* queue arrivals, crashes, shutdown — everyone re-checks *)
  queue : Unix.file_descr Queue.t;
  active : (Unix.file_descr, unit) Hashtbl.t;  (* connections being served *)
  slots : slot list;
  crashed : slot Queue.t;  (* dead workers awaiting supervisor pickup *)
  drain : bool Atomic.t;  (* set by signal handlers; atomic on purpose *)
  tele : Dca_support.Telemetry.Ctx.t;  (* daemon context, for respawned workers *)
  mutable live_workers : int;
  mutable reserved : int;  (* budget slots handed out *)
  mutable served : int;  (* requests completed (replied or reply attempted) *)
  mutable stop : bool;  (* no further admissions *)
  mutable closed : bool;  (* workers may exit once the queue drains *)
  access : out_channel option;
  log_lock : Mutex.t;
  metrics_lock : Mutex.t;
  mutable metrics_warned : bool;  (* metrics-file write failures log once *)
}

(* Direct-to-fd line write for the paths that cannot share a worker's
   out_channel: shed replies (no worker yet), watchdog replies, and
   crash last rites (the worker's channel state is unknown). *)
let write_line_fd fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let log_request st (rq : Protocol.request) (rp : Protocol.response) ~status =
  let slow =
    match st.cfg.sv_slow_request_ms with
    | Some ms -> rp.Protocol.rp_elapsed_ns >= ms * 1_000_000
    | None -> false
  in
  if slow then Metrics.incr (Engine.metrics st.engine) "dca_slow_requests_total";
  match st.access with
  | None -> ()
  | Some oc ->
      let entry =
        Json.Obj
          ([
             ("ts_ns", Json.Int (Dca_support.Telemetry.now_ns ()));
             ("id", Json.Int rq.Protocol.rq_id);
             ("req", Json.Int rp.Protocol.rp_req);
             ("op", Json.Str (Protocol.op_to_string rq.Protocol.rq_op));
             ("program", Json.Str (program_name rq.Protocol.rq_program));
             ("status", Json.Str status);
             ("loops", Json.Int (List.length rp.Protocol.rp_loops));
             ("hits", Json.Int rp.Protocol.rp_hits);
             ("misses", Json.Int rp.Protocol.rp_misses);
             ("elapsed_ns", Json.Int rp.Protocol.rp_elapsed_ns);
           ]
          @ if slow then [ ("slow", Json.Bool true) ] else [])
      in
      Mutex.protect st.log_lock (fun () ->
          output_string oc (Json.to_string entry);
          output_char oc '\n';
          flush oc)

let write_metrics_file st =
  match st.cfg.sv_metrics_file with
  | None -> ()
  | Some file ->
      Mutex.protect st.metrics_lock (fun () ->
          try
            let data = Metrics.exposition (Metrics.snapshot (Engine.metrics st.engine)) in
            let tmp = file ^ ".tmp" in
            let oc = open_out tmp in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc data);
            Sys.rename tmp file
          with (Sys_error _ | Unix.Unix_error _) as e ->
            (* an unwritable scrape target must not take the daemon down;
               keep trying — the disk may come back — but log only once *)
            if not st.metrics_warned then begin
              st.metrics_warned <- true;
              Printf.eprintf "dca serve: cannot write metrics file %s (%s); continuing\n%!"
                file (Printexc.to_string e)
            end)

(* Wake the accept loop out of a blocking [accept]: connect and hang up.
   The accepted descriptor is discarded by the stopped loop.  Also the
   only thing (besides an atomic store) a signal handler does — it
   takes no lock a handler could already be holding. *)
let wake_accept st =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect s (Unix.ADDR_UNIX st.cfg.sv_socket) with Unix.Unix_error _ -> ());
  try Unix.close s with Unix.Unix_error _ -> ()

(* Force workers blocked in [input_line] on idle persistent connections
   to see end-of-file.  Reads only — a reply in flight still goes out. *)
let shutdown_active st =
  let fds = Mutex.protect st.lock (fun () -> Hashtbl.fold (fun fd () acc -> fd :: acc) st.active []) in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    fds

let enter_stop st =
  wake_accept st;
  shutdown_active st

(* Reserve one budget slot.  Refusals close the connection; exhausting
   the budget flips [stop] so the accept loop and the other workers
   wind down. *)
let admit st =
  let admitted, stopped =
    Mutex.protect st.lock (fun () ->
        if st.stop then (false, false)
        else begin
          st.reserved <- st.reserved + 1;
          match st.cfg.sv_max_requests with
          | Some n when st.reserved >= n ->
              st.stop <- true;
              (true, true)
          | _ -> (true, false)
        end)
  in
  if stopped then enter_stop st;
  admitted

let note_served st (rq : Protocol.request) =
  let stopped =
    Mutex.protect st.lock (fun () ->
        st.served <- st.served + 1;
        if rq.Protocol.rq_op = Protocol.Shutdown && not st.stop then begin
          st.stop <- true;
          true
        end
        else false)
  in
  if stopped then enter_stop st

let handle_request st (rq : Protocol.request) =
  let module T = Dca_support.Telemetry in
  let name = "serve." ^ Protocol.op_to_string rq.Protocol.rq_op in
  let traced = T.tracing () in
  if traced then T.begin_span ~cat:"serve" name;
  match Engine.handle st.engine rq with
  | rp ->
      if traced then
        T.end_span
          ~args:
            [
              ("req", string_of_int rp.Protocol.rp_req);
              ("id", string_of_int rq.Protocol.rq_id);
              ("status", Protocol.status_to_string rp.Protocol.rp_status);
            ]
          name;
      rp
  | exception e ->
      if traced then T.end_span name;
      raise e

let serve_connection st slot fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send rp =
    try
      output_string oc (Protocol.response_line rp);
      output_char oc '\n';
      flush oc
    with Sys_error _ -> ()
  in
  let continue = ref true in
  while !continue do
    match input_line ic with
    | line ->
        if String.trim line <> "" then
          if admit st then begin
            match Protocol.parse_request line with
            | Error msg ->
                let rp = Protocol.error_response ~id:0 ("bad request: " ^ msg) in
                send rp;
                log_request st Protocol.default_request rp
                  ~status:(Protocol.status_to_string rp.Protocol.rp_status);
                write_metrics_file st;
                note_served st Protocol.default_request
            | Ok rq ->
                let inf =
                  {
                    if_id = rq.Protocol.rq_id;
                    if_fd = fd;
                    if_start_ns = Dca_support.Telemetry.now_ns ();
                    if_lock = Mutex.create ();
                    if_state = Running;
                  }
                in
                Mutex.protect st.lock (fun () -> slot.s_inflight <- Some (rq, inf));
                (* crash site: an injected raise ends this worker domain
                   with the request in flight — exercising the
                   busy-reply + respawn supervision path *)
                Faultpoint.hit_unit fp_worker;
                let rp = handle_request st rq in
                (* reply ownership: losing to the watchdog means the
                   timeout error already went out and the flow is shut *)
                let timed_out =
                  Mutex.protect inf.if_lock (fun () ->
                      if inf.if_state = Running then begin
                        inf.if_state <- Replied;
                        false
                      end
                      else true)
                in
                Mutex.protect st.lock (fun () -> slot.s_inflight <- None);
                if not timed_out then send rp;
                log_request st rq rp
                  ~status:
                    (if timed_out then "timeout"
                     else Protocol.status_to_string rp.Protocol.rp_status);
                write_metrics_file st;
                note_served st rq;
                if timed_out then continue := false
          end
          else continue := false
    | exception End_of_file -> continue := false
    | exception Sys_error _ -> continue := false
  done

let worker_loop st slot =
  let running = ref true in
  while !running do
    Mutex.lock st.lock;
    let rec take () =
      match Queue.take_opt st.queue with
      | Some fd -> Some fd
      | None -> if st.closed then None else (Condition.wait st.cond st.lock; take ())
    in
    let item = take () in
    (match item with
    | Some fd ->
        Hashtbl.replace st.active fd ();
        slot.s_fd <- Some fd
    | None -> ());
    Mutex.unlock st.lock;
    match item with
    | Some fd ->
        Metrics.gauge_add (Engine.metrics st.engine) "dca_queue_depth" (-1);
        serve_connection st slot fd;
        Mutex.protect st.lock (fun () ->
            Hashtbl.remove st.active fd;
            slot.s_fd <- None);
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> running := false
  done

(* Last rites of a crashed worker, run on the dying domain itself: give
   the in-flight request a [busy] reply (nothing was cached, a retry is
   safe and converges to a byte-identical report), account for the
   budget slot it reserved, close the connection, and hand the slot to
   the supervisor. *)
let worker_crashed st slot exn =
  let inflight =
    Mutex.protect st.lock (fun () ->
        let i = slot.s_inflight in
        slot.s_inflight <- None;
        i)
  in
  (match inflight with
  | Some (rq, inf) ->
      let rp =
        Protocol.busy_response ~id:inf.if_id
          ("worker crashed mid-request (" ^ Printexc.to_string exn
         ^ "); nothing was cached, retrying is safe")
      in
      let reply =
        Mutex.protect inf.if_lock (fun () ->
            if inf.if_state = Running then begin
              inf.if_state <- Replied;
              true
            end
            else false)
      in
      if reply then (
        try write_line_fd inf.if_fd (Protocol.response_line rp)
        with Unix.Unix_error _ | Sys_error _ -> ());
      log_request st rq rp ~status:(Protocol.status_to_string rp.Protocol.rp_status);
      write_metrics_file st;
      (* the crashed request consumed the budget slot it reserved *)
      note_served st rq
  | None -> ());
  (* the connection dies with its worker; a retrying client reconnects *)
  let fd =
    Mutex.protect st.lock (fun () ->
        let f = slot.s_fd in
        slot.s_fd <- None;
        Option.iter (fun fd -> Hashtbl.remove st.active fd) f;
        f)
  in
  (match fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.protect st.lock (fun () ->
      Queue.add slot st.crashed;
      Condition.broadcast st.cond)

let worker_body st slot =
  (try worker_loop st slot with exn -> worker_crashed st slot exn);
  Mutex.protect st.lock (fun () ->
      st.live_workers <- st.live_workers - 1;
      Condition.broadcast st.cond)

(* The supervisor joins crashed worker domains and spawns replacements
   into their slots.  During shutdown it still joins the corpses but
   stops respawning; it exits once [closed] is set and the crash queue
   is empty. *)
let supervisor_loop st =
  let running = ref true in
  while !running do
    Mutex.lock st.lock;
    while Queue.is_empty st.crashed && not st.closed do
      Condition.wait st.cond st.lock
    done;
    let item = Queue.take_opt st.crashed in
    let closing = st.closed in
    Mutex.unlock st.lock;
    match item with
    | Some slot -> (
        (* the dead domain already ran its last rites; joining is quick *)
        (match slot.s_domain with Some d -> Domain.join d | None -> ());
        if closing then slot.s_domain <- None
        else begin
          Metrics.incr (Engine.metrics st.engine) "dca_worker_restarts_total";
          Printf.eprintf "dca serve: worker crashed; respawning\n%!";
          let d =
            Domain.spawn (fun () ->
                Dca_support.Telemetry.with_ctx st.tele (fun () -> worker_body st slot))
          in
          Mutex.protect st.lock (fun () ->
              slot.s_domain <- Some d;
              st.live_workers <- st.live_workers + 1)
        end)
    | None -> if closing then running := false
  done

(* The request-timeout watchdog.  It scans the in-flight registry on a
   short period; an overdue request whose Running→Timed_out transition
   it wins gets a structured error reply and its flow shut — all while
   holding the request's lock, so the worker can neither reply nor
   close the descriptor concurrently.  The engine call itself is left
   to finish: interrupting it could only produce timing-dependent
   verdicts, which must never exist (let alone get cached). *)
let watchdog_loop st ~timeout_ms ~stop =
  let timeout_ns = timeout_ms * 1_000_000 in
  let interval = Float.max 0.002 (Float.min 0.05 (float_of_int timeout_ms /. 4000.)) in
  while not (Atomic.get stop) do
    Unix.sleepf interval;
    let now = Dca_support.Telemetry.now_ns () in
    let expired =
      Mutex.protect st.lock (fun () ->
          List.filter_map
            (fun slot ->
              match slot.s_inflight with
              | Some (_, inf) when now - inf.if_start_ns >= timeout_ns -> Some inf
              | _ -> None)
            st.slots)
    in
    List.iter
      (fun inf ->
        let fired =
          Mutex.protect inf.if_lock (fun () ->
              if inf.if_state = Running then begin
                inf.if_state <- Timed_out;
                let rp =
                  Protocol.error_response ~id:inf.if_id
                    (Printf.sprintf "request timed out after %d ms" timeout_ms)
                in
                (try write_line_fd inf.if_fd (Protocol.response_line rp)
                 with Unix.Unix_error _ | Sys_error _ -> ());
                (try Unix.shutdown inf.if_fd Unix.SHUTDOWN_ALL
                 with Unix.Unix_error _ -> ());
                true
              end
              else false)
        in
        if fired then Metrics.incr (Engine.metrics st.engine) "dca_requests_timeout_total")
      expired
  done

let run cfg =
  reclaim_stale_socket cfg.sv_socket;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind sock (Unix.ADDR_UNIX cfg.sv_socket) with
  | () -> ()
  | exception e ->
      Unix.close sock;
      raise e);
  Unix.listen sock 64;
  let engine =
    Engine.create ?cache_dir:cfg.sv_cache_dir ?cache_capacity:cfg.sv_cache_capacity
      ~sessions:cfg.sv_sessions ?jobs:cfg.sv_jobs ()
  in
  let access =
    Option.map (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path) cfg.sv_access_log
  in
  let st =
    {
      engine;
      cfg;
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 16;
      slots = List.init (max 1 cfg.sv_workers) (fun _ -> { s_domain = None; s_fd = None; s_inflight = None });
      crashed = Queue.create ();
      drain = Atomic.make false;
      tele = Dca_support.Telemetry.current ();
      live_workers = 0;
      reserved = 0;
      served = 0;
      stop = false;
      closed = false;
      access;
      log_lock = Mutex.create ();
      metrics_lock = Mutex.create ();
      metrics_warned = false;
    }
  in
  (* A client hanging up mid-reply must be the client's problem, not a
     daemon-killing SIGPIPE; writes report EPIPE instead, which every
     reply path already swallows. *)
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals =
    if cfg.sv_handle_signals then begin
      (* async-safety: an atomic store plus a self-connect — never a
         lock, which a handler interrupting its own holder would
         deadlock on *)
      let on_signal _ =
        Atomic.set st.drain true;
        wake_accept st
      in
      let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
      let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
      fun () ->
        Sys.set_signal Sys.sigterm old_term;
        Sys.set_signal Sys.sigint old_int
    end
    else fun () -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      restore_signals ();
      Sys.set_signal Sys.sigpipe old_pipe;
      Engine.close engine;
      write_metrics_file st;
      Option.iter close_out_noerr access;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove cfg.sv_socket with Sys_error _ -> ())
    (fun () ->
      (* Workers inherit the acceptor's telemetry context, exactly like
         pool tasks: daemon-level spans land in the daemon's context. *)
      List.iter
        (fun slot ->
          (* count the worker live before it exists: its own exit
             decrement can then never race the increment *)
          Mutex.protect st.lock (fun () -> st.live_workers <- st.live_workers + 1);
          let d =
            Domain.spawn (fun () ->
                Dca_support.Telemetry.with_ctx st.tele (fun () -> worker_body st slot))
          in
          slot.s_domain <- Some d)
        st.slots;
      let supervisor = Domain.spawn (fun () -> supervisor_loop st) in
      let watchdog_stop = Atomic.make false in
      let watchdog =
        Option.map
          (fun ms -> Domain.spawn (fun () -> watchdog_loop st ~timeout_ms:ms ~stop:watchdog_stop))
          cfg.sv_request_timeout_ms
      in
      (* The accept loop: enqueue until stopped or draining.  A stop
         flipped by a worker — or a drain flipped by a signal handler —
         wakes a blocking [accept] through [wake_accept]. *)
      let accepting = ref true in
      while !accepting do
        if Atomic.get st.drain || Mutex.protect st.lock (fun () -> st.stop) then
          accepting := false
        else
          match Unix.accept sock with
          | fd, _ ->
              if Atomic.get st.drain then (
                try Unix.close fd with Unix.Unix_error _ -> ())
              else begin
                let verdict =
                  Mutex.protect st.lock (fun () ->
                      if st.stop then `Drop
                      else if Queue.length st.queue >= max 1 cfg.sv_max_queue then `Shed
                      else begin
                        Queue.add fd st.queue;
                        Condition.broadcast st.cond;
                        `Enqueued
                      end)
                in
                match verdict with
                | `Enqueued -> Metrics.gauge_add (Engine.metrics st.engine) "dca_queue_depth" 1
                | `Shed ->
                    (* refuse before reading anything: the client gets an
                       immediate busy line it can back off on *)
                    Metrics.incr (Engine.metrics st.engine) "dca_requests_shed_total";
                    let rp =
                      Protocol.busy_response ~id:0
                        (Printf.sprintf "server overloaded: request queue is full (max %d)"
                           (max 1 cfg.sv_max_queue))
                    in
                    (try write_line_fd fd (Protocol.response_line rp)
                     with Unix.Unix_error _ | Sys_error _ -> ());
                    (try Unix.close fd with Unix.Unix_error _ -> ())
                | `Drop -> ( try Unix.close fd with Unix.Unix_error _ -> ())
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      if Atomic.get st.drain then begin
        Printf.eprintf "dca serve: drain requested; finishing in-flight requests\n%!";
        Mutex.protect st.lock (fun () -> st.stop <- true);
        shutdown_active st
      end;
      (* Drain: workers finish in-flight connections (admission is shut),
         discard the queued rest, and exit — within the drain budget. *)
      Mutex.protect st.lock (fun () ->
          st.closed <- true;
          Condition.broadcast st.cond);
      let deadline =
        Dca_support.Telemetry.now_ns () + int_of_float (cfg.sv_drain_timeout_s *. 1e9)
      in
      let rec await () =
        let live = Mutex.protect st.lock (fun () -> st.live_workers) in
        if live = 0 then 0
        else if Dca_support.Telemetry.now_ns () >= deadline then live
        else begin
          Unix.sleepf 0.02;
          await ()
        end
      in
      let leftover = await () in
      if leftover > 0 then
        Printf.eprintf
          "dca serve: drain timeout (%.1fs) exceeded; abandoning %d in-flight worker(s)\n%!"
          cfg.sv_drain_timeout_s leftover;
      (* the supervisor exits once closed + crash queue empty; joining it
         first means nobody else is joining worker domains concurrently *)
      Domain.join supervisor;
      if leftover = 0 then
        List.iter
          (fun slot -> match slot.s_domain with Some d -> Domain.join d | None -> ())
          st.slots;
      Atomic.set watchdog_stop true;
      Option.iter Domain.join watchdog;
      st.served)
