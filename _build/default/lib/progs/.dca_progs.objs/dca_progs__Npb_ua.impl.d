lib/progs/npb_ua.ml: Benchmark
