lib/dca/candidate.mli: Dca_analysis Iterator_rec
