lib/analysis/memred.mli: Affine Dca_ir Loops Scalars
