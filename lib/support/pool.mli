(** Fixed-size worker pool over OCaml 5 domains.

    The DCA dynamic stage is an embarrassingly parallel fan-out: every
    (loop, schedule, invocation) commutativity test depends only on its
    own snapshot of the program state, never on a sibling test.  The pool
    turns that independence into multicore execution while keeping every
    user-visible result {e deterministic}: {!map} returns results in input
    order, and when several tasks raise, the exception of the
    {e lowest-indexed} input is re-raised — exactly what a sequential
    [List.map] would have surfaced first.

    A pool created with [~jobs:1] spawns no domains and runs everything in
    the calling domain ([map] is literally [List.map]), so [jobs = 1] is
    bit-identical to the historical sequential path by construction.

    Nested use is supported: a task running on a worker may itself call
    {!map} on the same pool.  The waiting caller {e participates} — it
    drains queued tasks (its own or siblings') instead of blocking a
    worker slot — so nested fan-outs (per-loop tests spawning per-schedule
    replays) cannot deadlock. *)

type t

val create : jobs:int -> t
(** Spawn a pool with [jobs] total executors: the caller plus
    [jobs - 1] worker domains.  [jobs] is clamped to [1 .. 128]. *)

val jobs : t -> int
(** The configured parallelism width (1 = sequential). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element, potentially in parallel,
    and returns the results in the order of [xs].  If any application
    raises, the exception of the earliest input element is re-raised
    (with its backtrace) after all tasks have settled. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Must not be called
    while a {!map} is in flight. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val default_jobs : unit -> int
(** The [DCA_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
