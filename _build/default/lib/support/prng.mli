(** Deterministic pseudo-random number generator (splitmix64).

    The whole reproduction is deterministic: every source of randomness —
    permutation shuffles in the DCA dynamic stage, synthetic workload
    generation, random CFGs in property tests — draws from an explicitly
    seeded [Prng.t].  No global state, no wall-clock seeding. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of splitmix64. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by [t]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)

val split : t -> t
(** Derive an independent child generator (useful to decorrelate
    subcomponents while keeping one root seed). *)
