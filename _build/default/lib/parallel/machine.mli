(** Simulated multicore machine model.

    The paper evaluates on a 72-core Intel Xeon Gold 6154; this host has a
    single core, so parallel executions are {e simulated}: the profiler
    records per-iteration costs in abstract work units (executed IR
    instructions), and this model computes the makespan of an OpenMP-style
    statically-chunked parallel loop:

    makespan = max over workers of (chunk work + per-chunk overhead)
             + spawn + barrier + reduction merge

    with barrier and merge costs growing logarithmically in the worker
    count.  Constants are chosen so NPB-class loop costs land in the
    paper's speedup range and are swept by the ablation bench
    (DESIGN.md §5). *)

type t = {
  m_workers : int;
  m_spawn_cost : float;  (** per parallel-loop launch *)
  m_barrier_cost : float;  (** per join, multiplied by log2(workers) *)
  m_chunk_cost : float;  (** per worker chunk (scheduling/cache warmup) *)
  m_reduction_cost : float;  (** per reduction variable, multiplied by log2(workers) *)
}

val default : t
(** 72 workers; spawn 400, barrier 80·log₂P, chunk 8, reduction 25·log₂P —
    calibrated so the scaled-down workloads land in the paper's speedup
    range (swept by the ablation bench). *)

val with_workers : t -> int -> t

val launch_overhead : t -> reductions:int -> float

val makespan : t -> int array -> reductions:int -> float
(** Simulated parallel time of one loop invocation with the given
    per-iteration costs.  An empty invocation costs only the overheads. *)

val sequential_time : int array -> float
