lib/profiling/depprof.ml: Array Dca_analysis Dca_interp Eval Events Hashtbl List Loops Option Proginfo
