open Dca_frontend
(** Textual dump of the IR, used in golden tests and debug reports. *)

open Ir

let var_to_string v = if v.vglobal then "@" ^ v.vname else v.vname

let operand_to_string = function
  | Ovar v -> var_to_string v
  | Oint n -> string_of_int n
  | Ofloat f -> Printf.sprintf "%.6g" f
  | Onull -> "null"

let instr_to_string i =
  let op = operand_to_string in
  match i.idesc with
  | Bin (d, b, x, y) ->
      Printf.sprintf "%s = %s %s, %s" (var_to_string d) (binop_to_string b) (op x) (op y)
  | Un (d, u, x) -> Printf.sprintf "%s = %s %s" (var_to_string d) (unop_to_string u) (op x)
  | Mov (d, x) -> Printf.sprintf "%s = %s" (var_to_string d) (op x)
  | Load (d, p) -> Printf.sprintf "%s = load %s" (var_to_string d) (op p)
  | Store (p, v) -> Printf.sprintf "store %s, %s" (op p) (op v)
  | Gep (d, base, idx, scale) ->
      Printf.sprintf "%s = gep %s, %s x%d" (var_to_string d) (op base) (op idx) scale
  | Gload (d, g) -> Printf.sprintf "%s = gload %s" (var_to_string d) (var_to_string g)
  | Gstore (g, v) -> Printf.sprintf "gstore %s, %s" (var_to_string g) (op v)
  | Gaddr (d, g) -> Printf.sprintf "%s = gaddr %s" (var_to_string d) (var_to_string g)
  | Alloc (d, ty, count) ->
      Printf.sprintf "%s = alloc %s x %s" (var_to_string d) (Ast.ty_to_string ty) (op count)
  | Call (Some d, name, args) ->
      Printf.sprintf "%s = call %s(%s)" (var_to_string d) name
        (String.concat ", " (List.map op args))
  | Call (None, name, args) ->
      Printf.sprintf "call %s(%s)" name (String.concat ", " (List.map op args))
  | Print x -> Printf.sprintf "print %s" (op x)
  | Prints s -> Printf.sprintf "prints %S" s

let term_to_string = function
  | Br t -> Printf.sprintf "br b%d" t
  | Cbr (c, a, b) -> Printf.sprintf "cbr %s, b%d, b%d" (operand_to_string c) a b
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (operand_to_string v)

let func_to_string f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) : %s {\n" f.fname
       (String.concat ", " (List.map (fun v -> v.vname ^ " : " ^ Ast.ty_to_string v.vty) f.fparams))
       (Ast.ty_to_string f.fret));
  Array.iter
    (fun blk ->
      Buffer.add_string buf (Printf.sprintf "b%d:\n" blk.bid);
      List.iter (fun i -> Buffer.add_string buf ("  " ^ instr_to_string i ^ "\n")) blk.instrs;
      Buffer.add_string buf ("  " ^ term_to_string blk.bterm ^ "\n"))
    f.fblocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let program_to_string p =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s : %s (%d cells)%s\n" g.g_var.vname
           (Ast.ty_to_string g.g_var.vty) g.g_size
           (match g.g_init with
           | Some op -> " = " ^ operand_to_string op
           | None -> "")))
    p.p_globals;
  List.iter (fun f -> Buffer.add_string buf ("\n" ^ func_to_string f)) p.p_funcs;
  Buffer.contents buf
