open Dca_ir

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (D : DOMAIN) = struct
  type result = { inputs : D.t array; outputs : D.t array }

  let solve order edges_in seed_pred seed transfer n =
    let inputs = Array.make n D.bottom and outputs = Array.make n D.bottom in
    let changed = ref true in
    (* Round-robin in a good order converges in depth+2 passes for the
       rapid frameworks we use (union-of-sets domains). *)
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          let incoming =
            List.fold_left (fun acc p -> D.join acc outputs.(p)) D.bottom (edges_in b)
          in
          let incoming = if seed_pred b then D.join incoming seed else incoming in
          let out = transfer b incoming in
          if not (D.equal incoming inputs.(b)) then inputs.(b) <- incoming;
          if not (D.equal out outputs.(b)) then begin
            outputs.(b) <- out;
            changed := true
          end)
        order
    done;
    { inputs; outputs }

  let forward cfg ~entry ~transfer =
    let n = Cfg.nblocks cfg in
    solve (Cfg.reverse_postorder cfg) (Cfg.preds cfg)
      (fun b -> b = Cfg.entry cfg)
      entry transfer n

  let backward cfg ~exit ~transfer =
    let n = Cfg.nblocks cfg in
    let exits = Cfg.exit_blocks cfg in
    solve (Cfg.postorder cfg) (Cfg.succs cfg) (fun b -> List.mem b exits) exit transfer n
end
