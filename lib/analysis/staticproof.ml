open Dca_ir

(* Bump whenever the proof obligations below change: the serve cache keys
   verdicts on this number (via [Progdigest.config_digest]), so a stale
   entry proved under weaker obligations can never satisfy a newer
   binary. *)
let version = 1

type proof =
  | Proved of { pf_groups : int; pf_stores : int }
  | Fission of { fs_proved : int; fs_residual : int; fs_reason : string }
  | Bail of string

let proof_to_string = function
  | Proved { pf_groups; pf_stores } ->
      Printf.sprintf "proved: %d access group(s), %d store(s)" pf_groups pf_stores
  | Fission { fs_proved; fs_residual; fs_reason } ->
      Printf.sprintf "fission: %d group(s) proved, %d residual (%s)" fs_proved fs_residual
        fs_reason
  | Bail reason -> "bail: " ^ reason

(* ------------------------------------------------------------------ *)
(* Instruction-level obligations                                       *)
(* ------------------------------------------------------------------ *)

(* The proof argues about exactly the effects [Affine.accesses_of_loop]
   can see: direct loads/stores of heap cells and global scalars.  Any
   instruction with effects outside that window — user calls (whose
   callee's accesses are invisible), impure builtins (PRNG state),
   allocation (observable block identity), I/O — defeats the argument
   outright. *)
let instruction_bail prog (instrs : Ir.instr list) =
  let check (i : Ir.instr) =
    match i.Ir.idesc with
    | Ir.Call (_, name, _) -> (
        if Ir.find_func prog name <> None then
          Some (Printf.sprintf "calls user function '%s'" name)
        else
          match Dca_frontend.Ast.find_builtin name with
          | Some b when b.Dca_frontend.Ast.bi_pure -> None
          | _ -> Some (Printf.sprintf "calls impure builtin '%s'" name))
    | Ir.Alloc _ -> Some "allocates inside the loop"
    | Ir.Print _ | Ir.Prints _ -> Some "performs I/O"
    | _ -> None
  in
  List.find_map check instrs

(* ------------------------------------------------------------------ *)
(* Scalar obligations                                                  *)
(* ------------------------------------------------------------------ *)

(* Scalars are discharged through the paper's privatization/reduction
   classification, with two extra obligations the dynamic stage never
   needs (it observes actual final state):

   - a [Private] scalar that is live out carries its *last* iteration's
     value out of the loop, so its final value depends on iteration
     order;
   - a floating-point reduction reassociates under permutation and the
     dynamic stage only tolerates that up to an epsilon — a *proof* of
     commutativity cannot lean on a tolerance, so only integer
     reductions (exact wrap-around arithmetic) are accepted. *)
let scalar_bail (fi : Proginfo.func_info) (loop : Loops.loop) =
  let live_out = Liveness.loop_live_out fi.Proginfo.fi_live loop in
  let classes = Scalars.classify_loop fi.Proginfo.fi_cfg fi.Proginfo.fi_affine fi.Proginfo.fi_live loop in
  let name vid =
    match Liveness.var_of_id fi.Proginfo.fi_live vid with
    | Some v -> v.Ir.vname
    | None -> Printf.sprintf "#%d" vid
  in
  List.find_map
    (fun (vid, cls) ->
      match cls with
      | Scalars.Carried -> Some (Printf.sprintf "loop-carried scalar '%s'" (name vid))
      | Scalars.Private when Dca_support.Intset.mem vid live_out ->
          Some (Printf.sprintf "private scalar '%s' is live out (last-value order-dependent)" (name vid))
      | Scalars.Reduction _ -> (
          match Liveness.var_of_id fi.Proginfo.fi_live vid with
          | Some v when v.Ir.vty = Dca_frontend.Ast.Tint -> None
          | _ ->
              Some
                (Printf.sprintf "floating-point reduction '%s' (reassociation is inexact)"
                   (name vid)))
      | Scalars.Induction | Scalars.Private -> None)
    classes

(* ------------------------------------------------------------------ *)
(* Memory obligations                                                  *)
(* ------------------------------------------------------------------ *)

(* Accesses are grouped by resolved root object and every pair involving
   a write must be refuted:

   - identical roots go through [Deptest.cross_iteration] (ZIV /
     strong-SIV / GCD on the subscript difference) — including a write's
     self-pair, which rules out invariant-address stores;
   - *differing* roots that [Deptest.may_alias] are failed outright:
     their subscripts are relative to different bases, so no distance
     argument applies.  This is deliberately stricter than the dynamic
     baselines; it also covers [Runknown] roots (alias everything);
   - two distinct pointer parameters are failed as well: [may_alias]
     answers for the *callee's* view, but a caller may pass the same
     array twice, and a proof must hold for every caller. *)
let group_key (a : Affine.access) = a.Affine.acc_root

let pair_conflict ~loop_id (a : Affine.access) (b : Affine.access) =
  if not (a.Affine.acc_write || b.Affine.acc_write) then None
  else if group_key a = group_key b then
    match Deptest.cross_iteration ~loop_id a b with
    | Deptest.No_dep -> None
    | Deptest.Dep reason -> Some reason
  else
    match (a.Affine.acc_root, b.Affine.acc_root) with
    | Affine.Rparam p, Affine.Rparam q when p <> q ->
        Some "distinct pointer parameters may be aliased by a caller"
    | ra, rb when Deptest.may_alias ra rb -> Some "accesses with differing may-aliasing roots"
    | _ -> None

(* Value-dependence walk for the fission split: may the value stored by a
   proved-group store be computed (this iteration) from a load belonging
   to a residual group?  Walks unique in-loop definitions, exactly like
   the memory-reduction recognizer; a variable with several in-loop
   definitions is conservatively assumed tainted. *)
let store_reads_residual instrs residual_loads =
  let def_table : (int, Ir.instr option) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (i : Ir.instr) ->
      match Ir.def_of i.Ir.idesc with
      | Some v ->
          Hashtbl.replace def_table v.Ir.vid
            (if Hashtbl.mem def_table v.Ir.vid then None else Some i)
      | None -> ())
    instrs;
  let rec tainted_op depth op =
    depth < 24
    &&
    match op with
    | Ir.Ovar v -> (
        match Hashtbl.find_opt def_table v.Ir.vid with
        | None -> false (* defined outside the loop: invariant this iteration *)
        | Some None -> true (* several in-loop defs: give up *)
        | Some (Some def) ->
            Dca_support.Intset.mem def.Ir.iid residual_loads
            || List.exists (tainted_op (depth + 1))
                 (match def.Ir.idesc with
                 | Ir.Bin (_, _, a, b) -> [ a; b ]
                 | Ir.Un (_, _, a) | Ir.Mov (_, a) | Ir.Load (_, a) -> [ a ]
                 | Ir.Gep (_, base, idx, _) -> [ base; idx ]
                 | Ir.Call (_, _, args) -> args
                 | Ir.Gload _ | Ir.Gaddr _ -> []
                 | Ir.Store _ | Ir.Gstore _ | Ir.Alloc _ | Ir.Print _ | Ir.Prints _ -> []))
    | Ir.Oint _ | Ir.Ofloat _ | Ir.Onull -> false
  in
  fun (store : Ir.instr) ->
    match store.Ir.idesc with
    | Ir.Store (_, value) | Ir.Gstore (_, value) -> tainted_op 0 value
    | _ -> false

(* ------------------------------------------------------------------ *)
(* The prover                                                          *)
(* ------------------------------------------------------------------ *)

let prove (info : Proginfo.t) (fi : Proginfo.func_info) (loop : Loops.loop) =
  let affine = fi.Proginfo.fi_affine in
  if not (Affine.counted_header affine loop) then
    Bail "not a well-formed counted loop (single induction variable, invariant bound)"
  else
    match Affine.induction_var affine loop with
    | None -> Bail "no unique induction variable"
    | Some (_, 0) -> Bail "induction variable has step 0"
    | Some _ -> (
        let instrs = Loops.instrs_of fi.Proginfo.fi_cfg loop in
        match instruction_bail (Proginfo.program info) instrs with
        | Some reason -> Bail reason
        | None -> (
            match scalar_bail fi loop with
            | Some reason -> Bail reason
            | None ->
                let accesses = Affine.accesses_of_loop affine loop in
                let loop_id = loop.Loops.l_id in
                (* mark every group touched by an offending pair *)
                let failed : (Affine.root, string) Hashtbl.t = Hashtbl.create 8 in
                let arr = Array.of_list accesses in
                let n = Array.length arr in
                for i = 0 to n - 1 do
                  for j = i to n - 1 do
                    match pair_conflict ~loop_id arr.(i) arr.(j) with
                    | Some reason ->
                        if not (Hashtbl.mem failed (group_key arr.(i))) then
                          Hashtbl.replace failed (group_key arr.(i)) reason;
                        if not (Hashtbl.mem failed (group_key arr.(j))) then
                          Hashtbl.replace failed (group_key arr.(j)) reason
                    | None -> ()
                  done
                done;
                let groups =
                  List.sort_uniq compare (List.map group_key accesses)
                in
                let stores = List.filter (fun a -> a.Affine.acc_write) accesses in
                if Hashtbl.length failed = 0 then
                  Proved { pf_groups = List.length groups; pf_stores = List.length stores }
                else
                  let proved_write_groups =
                    List.filter
                      (fun g ->
                        (not (Hashtbl.mem failed g))
                        && List.exists (fun a -> a.Affine.acc_write && group_key a = g) accesses)
                      groups
                  in
                  let failed_groups = List.filter (Hashtbl.mem failed) groups in
                  let first_reason =
                    match failed_groups with
                    | g :: _ -> Hashtbl.find failed g
                    | [] -> "unreachable"
                  in
                  if proved_write_groups = [] then Bail first_reason
                  else
                    (* fission legality: the proved half's stores must not
                       consume values loaded by the residual half *)
                    let residual_loads =
                      List.filter
                        (fun a ->
                          (not a.Affine.acc_write) && Hashtbl.mem failed (group_key a))
                        accesses
                      |> List.map (fun a -> a.Affine.acc_iid)
                      |> Dca_support.Intset.of_list
                    in
                    let taints = store_reads_residual instrs residual_loads in
                    let proved_stores =
                      List.filter
                        (fun (i : Ir.instr) ->
                          match i.Ir.idesc with
                          | Ir.Store _ | Ir.Gstore _ ->
                              List.exists
                                (fun a ->
                                  a.Affine.acc_iid = i.Ir.iid
                                  && a.Affine.acc_write
                                  && List.mem (group_key a) proved_write_groups)
                                accesses
                          | _ -> false)
                        instrs
                    in
                    if List.exists taints proved_stores then
                      Bail
                        (Printf.sprintf "fission blocked: proved store consumes residual load (%s)"
                           first_reason)
                    else
                      Fission
                        {
                          fs_proved = List.length proved_write_groups;
                          fs_residual = List.length failed_groups;
                          fs_reason = first_reason;
                        }))
