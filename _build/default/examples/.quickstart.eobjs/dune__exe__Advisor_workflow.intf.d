examples/advisor_workflow.mli:
