(* Differential testing of the C exporter: every benchmark, exported to
   C99 and compiled with the system C compiler, must print exactly the
   lines the interpreter prints.  This cross-checks the interpreter's
   semantics (arithmetic, layout, generators) against gcc.  Skipped when
   no C compiler is installed. *)

open Dca_progs

let cc = if Sys.command "command -v gcc > /dev/null 2> /dev/null" = 0 then Some "gcc" else None

let run_interpreter bm =
  let prog = Benchmark.compile bm in
  let ctx = Dca_interp.Eval.create ~input:bm.Benchmark.bm_input prog in
  Dca_interp.Eval.run_main ctx;
  Dca_interp.Eval.outputs ctx

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with line -> go (line :: acc) | exception End_of_file -> List.rev acc
      in
      go [])

let run_compiled compiler bm =
  let dir = Filename.temp_file "dca_cexport" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let c_file = Filename.concat dir "prog.c" in
      let exe = Filename.concat dir "prog" in
      let out = Filename.concat dir "out.txt" in
      let input = Filename.concat dir "input.txt" in
      write_file c_file (Dca_frontend.C_export.export_source ~file:"prog.mc" bm.Benchmark.bm_source);
      write_file input (String.concat " " (List.map string_of_int bm.Benchmark.bm_input));
      let compile_cmd =
        Printf.sprintf "%s -O1 -o %s %s -lm 2> %s/cc.err" compiler (Filename.quote exe)
          (Filename.quote c_file) (Filename.quote dir)
      in
      if Sys.command compile_cmd <> 0 then
        Alcotest.failf "%s: C compilation failed:\n%s" bm.Benchmark.bm_name
          (String.concat "\n" (read_lines (Filename.concat dir "cc.err")));
      let run_cmd =
        Printf.sprintf "%s < %s > %s" (Filename.quote exe) (Filename.quote input)
          (Filename.quote out)
      in
      if Sys.command run_cmd <> 0 then Alcotest.failf "%s: compiled binary failed" bm.Benchmark.bm_name;
      read_lines out)

let differential_case compiler bm =
  Alcotest.test_case (bm.Benchmark.bm_name ^ " matches gcc") `Slow (fun () ->
      Alcotest.(check (list string))
        bm.Benchmark.bm_name (run_interpreter bm) (run_compiled compiler bm))

let test_pragma_insertion () =
  let src = "int a[8]; void main() { int i; for (i = 0; i < 8; i = i + 1) { a[i] = i; } printi(a[1]); }" in
  let ast = Dca_frontend.Parser.parse_program ~file:"<t>" src in
  let loop_line =
    match (List.hd ast.Dca_frontend.Ast.funcs).Dca_frontend.Ast.f_body with
    | _ :: { Dca_frontend.Ast.sdesc = Dca_frontend.Ast.Sfor _; sloc; _ } :: _ ->
        sloc.Dca_frontend.Loc.line
    | _ -> Alcotest.fail "unexpected shape"
  in
  let c =
    Dca_frontend.C_export.export_source
      ~pragmas:[ (loop_line, "#pragma omp parallel for schedule(static)") ]
      ~file:"<t>" src
  in
  let has_pragma =
    String.split_on_char '\n' c
    |> List.exists (fun l -> String.trim l = "#pragma omp parallel for schedule(static)")
  in
  Alcotest.(check bool) "pragma emitted" true has_pragma

let suites =
  match cc with
  | None ->
      [ ( "c-export",
          [
            Alcotest.test_case "pragmas" `Quick test_pragma_insertion;
            Alcotest.test_case "no C compiler installed (differential tests skipped)" `Quick
              (fun () -> ());
          ] ) ]
  | Some compiler ->
      [
        ( "c-export",
          Alcotest.test_case "pragmas" `Quick test_pragma_insertion
          :: List.map (differential_case compiler) Registry.all );
      ]

(* The export-c pipeline with OpenMP pragmas: must compile under -fopenmp
   and, pinned to one thread (DCA's pragmas carry scalar reduction clauses
   but array read-modify-writes would need atomics for true concurrency),
   reproduce the interpreter's outputs exactly. *)
let run_openmp compiler bm =
  let dir = Filename.temp_file "dca_omp" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let source = bm.Benchmark.bm_source in
      let prog = Benchmark.compile bm in
      let info = Dca_analysis.Proginfo.analyze prog in
      let profile = Dca_profiling.Depprof.profile_program ~input:bm.Benchmark.bm_input info in
      let spec =
        Dca_core.Commutativity.make_run_spec ~fuel:200_000_000 bm.Benchmark.bm_input
      in
      let results = Dca_core.Driver.analyze_program ~spec info in
      let plan =
        Dca_parallel.Planner.select ~machine:Dca_parallel.Machine.default info profile
          ~detected:(Dca_core.Driver.commutative_ids results)
          ~strategy:Dca_parallel.Planner.Best_benefit
      in
      let ast = Dca_frontend.Parser.parse_program ~file:"prog.mc" source in
      let pragmas =
        List.filter_map
          (fun lp ->
            match Dca_analysis.Proginfo.loop_by_id info lp.Dca_parallel.Plan.lp_loop_id with
            | Some (_, loop) ->
                let line = loop.Dca_analysis.Loops.l_loc.Dca_frontend.Loc.line in
                let inner = Dca_frontend.C_export.body_declared_names ast ~line in
                let privates =
                  List.filter (fun n -> not (List.mem n inner)) lp.Dca_parallel.Plan.lp_private
                in
                let priv =
                  match privates with [] -> "" | l -> " private(" ^ String.concat ", " l ^ ")"
                in
                Some (line, "#pragma omp parallel for schedule(static)" ^ priv)
            | None -> None)
          plan.Dca_parallel.Plan.plan_loops
      in
      Alcotest.(check bool) (bm.Benchmark.bm_name ^ " has pragmas") true (pragmas <> []);
      let c_file = Filename.concat dir "prog.c" in
      let exe = Filename.concat dir "prog" in
      let out = Filename.concat dir "out.txt" in
      let input = Filename.concat dir "input.txt" in
      write_file c_file (Dca_frontend.C_export.export_source ~pragmas ~file:"prog.mc" source);
      write_file input (String.concat " " (List.map string_of_int bm.Benchmark.bm_input));
      let compile_cmd =
        Printf.sprintf "%s -fopenmp -O1 -o %s %s -lm 2> %s/cc.err" compiler (Filename.quote exe)
          (Filename.quote c_file) (Filename.quote dir)
      in
      if Sys.command compile_cmd <> 0 then
        Alcotest.failf "%s: OpenMP compilation failed:\n%s" bm.Benchmark.bm_name
          (String.concat "\n" (read_lines (Filename.concat dir "cc.err")));
      let run_cmd =
        Printf.sprintf "OMP_NUM_THREADS=1 %s < %s > %s" (Filename.quote exe)
          (Filename.quote input) (Filename.quote out)
      in
      if Sys.command run_cmd <> 0 then Alcotest.failf "%s: OpenMP binary failed" bm.Benchmark.bm_name;
      read_lines out)

let openmp_case compiler name =
  Alcotest.test_case (name ^ " OpenMP export") `Slow (fun () ->
      let bm = Registry.find_exn name in
      Alcotest.(check (list string)) name (run_interpreter bm) (run_openmp compiler bm))

let suites =
  match cc with
  | None -> suites
  | Some compiler ->
      suites
      @ [ ("c-export-openmp", List.map (openmp_case compiler) [ "IS"; "EP"; "SP"; "UA" ]) ]
