(** Program dependence graph of a function, at instruction granularity.

    Nodes are instructions plus one pseudo-node per block terminator.  Two
    kinds of dependence edges are recorded, both queried {e backwards}
    (from a node to the nodes it depends on):

    - {e data}: flow-insensitive def→use over frame variables (a use
      depends on every def of the variable in the function — a sound
      over-approximation that can only enlarge the iterator slice);
    - {e control}: a node depends on the terminator of every block its
      block is control-dependent on (computed from the post-dominator
      tree in the classic Ferrante–Ottenstein–Warren fashion).

    The generalized iterator recognition of the paper (§IV-A1, after
    Manilov et al. CC'18) is the backward closure of the loop's exiting
    terminators inside the loop; see {!Iterator_rec} in [dca_core]. *)

type node = Instr of int  (** instruction id *) | Term of int  (** block id *)

val compare_node : node -> node -> int

module Nodeset : Set.S with type elt = node

type t

val build : Dca_ir.Cfg.t -> t

val deps_of : t -> node -> node list
(** Data and control dependencies of a node. *)

val data_deps_of : t -> node -> node list

val node_block : t -> node -> int
(** Block the node belongs to. *)

val instr : t -> int -> Dca_ir.Ir.instr
(** Instruction record by id (must belong to this function). *)

val nodes_of_block : t -> int -> node list

val defs_of_var : t -> int -> node list
(** Nodes (always [Instr]) defining the given variable id. *)

val backward_closure : t -> within:(node -> bool) -> node list -> Nodeset.t
(** Transitive dependencies of the seed nodes, restricted to nodes
    satisfying [within].  The seeds are included (when [within] holds). *)

val control_parents : t -> int -> int list
(** Blocks whose terminator the given block is control-dependent on. *)
