(** SP — Scalar Pentadiagonal solver (NPB).

    Same ADI skeleton as BT but with scalar 5-point line solves written
    inline (no calls), so the affine static baselines can analyze more of
    it — mirroring SP's higher ICC column in Table III — while the
    line-internal eliminations stay sequential. *)

let source =
  {|
// NPB SP kernel, MiniC port (scalar pentadiagonal ADI).
int   n;
float u[22][22];
float rhs[22][22];
float speed[22][22];
float ainv[22][22];
float ws[22][22];
float dssp;
float total;
float xnorm;
int   verified;

// txinvr-like pointwise transform of the right-hand side
void txinvr() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      rhs[i][j] = rhs[i][j] * ainv[i][j];
    }
  }
}

// ninvr-like post-sweep normalization
void ninvr() {
  int i;
  int j;
  for (i = 1; i < n - 1; i = i + 1) {
    for (j = 1; j < n - 1; j = j + 1) {
      rhs[i][j] = rhs[i][j] / (1.0 + 0.5 * fabs(ws[i][j]));
    }
  }
}

// per-column L2 norm of the solution (columns independent)
float solution_norm() {
  float s = 0.0;
  int j;
  for (j = 0; j < n; j = j + 1) {
    float c = 0.0;
    int i;
    for (i = 0; i < n; i = i + 1) { c = c + u[i][j] * u[i][j]; }
    s = s + c;
  }
  return sqrt(s);
}

void main() {
  n = 22;
  int i;
  int j;
  // initialization
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      u[i][j] = hrand(i * 22 + j) * 0.5;
      speed[i][j] = 1.0 + 0.1 * hrand(1000 + i * 22 + j);
      ainv[i][j] = 1.0 / (1.0 + 0.05 * hrand(2000 + i * 22 + j));
      ws[i][j] = hrand(3000 + i * 22 + j) - 0.5;
      rhs[i][j] = 0.0;
    }
  }
  int step;
  for (step = 0; step < 3; step = step + 1) {
    dssp = 0.05 + 0.01 * itof(step);
    // rhs population: 5-point dissipation stencil (parallel)
    for (i = 2; i < n - 2; i = i + 1) {
      for (j = 2; j < n - 2; j = j + 1) {
        rhs[i][j] = speed[i][j] * u[i][j]
          - dssp * (u[i - 2][j] + u[i + 2][j] + u[i][j - 2] + u[i][j + 2] - 4.0 * u[i][j]);
      }
    }
    txinvr();
    // x sweep: parallel across rows i... each row's elimination is sequential in j
    for (i = 2; i < n - 2; i = i + 1) {
      for (j = 3; j < n - 2; j = j + 1) {
        rhs[i][j] = rhs[i][j] - 0.2 * rhs[i][j - 1];
      }
    }
    // y sweep: parallel across columns j
    for (j = 2; j < n - 2; j = j + 1) {
      for (i = 3; i < n - 2; i = i + 1) {
        rhs[i][j] = rhs[i][j] - 0.2 * rhs[i - 1][j];
      }
    }
    ninvr();
    // update (parallel)
    for (i = 2; i < n - 2; i = i + 1) {
      for (j = 2; j < n - 2; j = j + 1) {
        u[i][j] = u[i][j] + 0.5 * rhs[i][j];
      }
    }
  }
  xnorm = solution_norm();
  // checksum
  total = 0.0;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) { total = total + u[i][j]; }
  }
  verified = 0;
  if (fabs(total) < 1000.0 && xnorm > 0.0) { verified = 1; }
  print(total);
  print(xnorm);
  printi(verified);
}
|}

let benchmark =
  {
    (Benchmark.default ~name:"SP" ~suite:Benchmark.Npb
       ~description:"scalar pentadiagonal ADI sweeps over a 2-D grid" ~source)
    with
    Benchmark.bm_expert_loops =
      [
        Benchmark.In_func "txinvr";
        Benchmark.In_func "ninvr";
        Benchmark.Outermost "solution_norm";
        Benchmark.Nth_in_func ("main", 0) (* init nest *);
        Benchmark.Nth_in_func ("main", 3) (* rhs stencil *);
        Benchmark.Nth_in_func ("main", 5) (* x sweep across rows *);
        Benchmark.Nth_in_func ("main", 7) (* y sweep across columns *);
        Benchmark.Nth_in_func ("main", 9) (* update *);
        Benchmark.Nth_in_func ("main", 11) (* checksum *);
      ];
    bm_expert_sections =
      [ [ Benchmark.Nth_in_func ("main", 3); Benchmark.Nth_in_func ("main", 5) ] ];
    bm_expert_extra = 0.0 (* paper: DCA extracts all available SP parallelism *);
    bm_known_sequential =
      [
        Benchmark.Nth_in_func ("main", 2) (* time stepping *);
        Benchmark.Nth_in_func ("main", 6) (* x elimination along j *);
        Benchmark.Nth_in_func ("main", 8) (* y elimination along i *);
      ];
  }
