(* The serve daemon's analysis core: warm sessions in front of the
   two-level verdict cache.

   A request is handled in five steps:

     1. resolve the program (registry name, server-side file, or inline
        source) to a source string + input stream;
     2. find or create a *warm session* — sessions are keyed by
        (source digest, options signature) and kept in a small LRU, so a
        repeated or incremental client skips parsing, lowering, the
        static analyses, and pool startup;
     3. compute per-loop cache keys (Progdigest) and probe the verdict
        cache, building a read-only table of resolved loops;
     4. run Driver.analyze_program with the table as its [?lookup] — only
        unresolved loops pay the dynamic stage, on the session's pool,
        merged deterministically with the cached verdicts;
     5. store the freshly computed verdicts and assemble the reply.

   Because cached entries are the exact (decision, outcome) pairs the
   driver would have produced, Report.to_string over the merged result
   list is byte-identical to a cold run — the acceptance criterion the
   serve bench asserts.

   The engine is sequential by design: one request at a time owns the
   process-global telemetry/faultpoint state and the cache.  Parallelism
   lives *inside* a request (the session pool), where the deterministic
   merge keeps output stable. *)

module Session = Dca_core.Session
module Driver = Dca_core.Driver
module Commutativity = Dca_core.Commutativity
module Report = Dca_core.Report
module Schedule = Dca_core.Schedule
module Faultpoint = Dca_support.Faultpoint
module Telemetry = Dca_support.Telemetry

type warm = {
  w_session : Session.t;
  w_digest : Progdigest.t Lazy.t;
  mutable w_last : int;
}

type t = {
  cache : Vcache.t;
  sessions : (string, warm) Hashtbl.t;
  session_cap : int;
  default_jobs : int option;
  mutable clock : int;
  mutable requests : int;
  mutable session_reuses : int;
  mutable aborted_requests : int;
}

let create ?cache_dir ?cache_capacity ?(sessions = 8) ?jobs () =
  {
    cache = Vcache.create ?dir:cache_dir ?capacity:cache_capacity ();
    sessions = Hashtbl.create 16;
    session_cap = max 1 sessions;
    default_jobs = jobs;
    clock = 0;
    requests = 0;
    session_reuses = 0;
    aborted_requests = 0;
  }

let cache t = t.cache

let close t =
  Hashtbl.iter (fun _ w -> Session.close w.w_session) t.sessions;
  Hashtbl.reset t.sessions

(* ------------------------------------------------------------------ *)
(* Program resolution                                                  *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resolve_program = function
  | Protocol.Named name -> (
      match Dca_progs.Registry.find name with
      | Some bm ->
          Ok
            ( bm.Dca_progs.Benchmark.bm_name ^ ".mc",
              bm.Dca_progs.Benchmark.bm_source,
              bm.Dca_progs.Benchmark.bm_input )
      | None ->
          if Sys.file_exists name then Ok (name, read_file name, [])
          else Error (Printf.sprintf "'%s' is neither a built-in benchmark nor a file" name))
  | Protocol.Inline { file; source; input } -> Ok (file, source, input)

(* The request's analysis options, built exactly the way `dca analyze`
   builds them so the daemon and the one-shot CLI share one key space. *)
let options_of_request t (rq : Protocol.request) =
  let config =
    {
      Commutativity.default_config with
      Commutativity.cc_schedules =
        Schedule.presets ~shuffles:(Option.value rq.Protocol.rq_shuffles ~default:3) ();
      cc_escalate = not rq.Protocol.rq_no_escalate;
    }
  in
  let base =
    Session.Options.(
      default |> with_config config |> with_hierarchical rq.Protocol.rq_hierarchical)
  in
  let set v f o = match v with None -> o | Some v -> f v o in
  base
  |> set
       (match rq.Protocol.rq_jobs with None -> t.default_jobs | j -> j)
       Session.Options.with_jobs
  |> set rq.Protocol.rq_deadline_ms Session.Options.with_deadline_ms
  |> set rq.Protocol.rq_heap_words Session.Options.with_heap_words

(* ------------------------------------------------------------------ *)
(* Warm-session pool                                                   *)
(* ------------------------------------------------------------------ *)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_sessions t =
  while Hashtbl.length t.sessions > t.session_cap do
    let victim = ref None in
    Hashtbl.iter
      (fun k w ->
        match !victim with
        | Some (_, best) when best <= w.w_last -> ()
        | _ -> victim := Some (k, w.w_last))
      t.sessions;
    match !victim with
    | Some (k, _) ->
        (match Hashtbl.find_opt t.sessions k with
        | Some w -> Session.close w.w_session
        | None -> ());
        Hashtbl.remove t.sessions k
    | None -> ()
  done

let warm_session t ~file ~source ~input options =
  let key = Digest.to_hex (Digest.string source) ^ "|" ^ Session.Options.signature options in
  match Hashtbl.find_opt t.sessions key with
  | Some w ->
      w.w_last <- tick t;
      t.session_reuses <- t.session_reuses + 1;
      w
  | None ->
      let s = Session.create ~options (Session.Source { file; source; input }) in
      let w =
        { w_session = s; w_digest = lazy (Progdigest.of_program (Session.ir s)); w_last = tick t }
      in
      Hashtbl.replace t.sessions key w;
      evict_sessions t;
      w

(* ------------------------------------------------------------------ *)
(* Cached analysis                                                     *)
(* ------------------------------------------------------------------ *)

type outcome = {
  eo_report : string;
  eo_loops : Protocol.loop_info list;
  eo_hits : int;
  eo_misses : int;
}

let subsumed (r : Driver.loop_result) =
  match r.Driver.lr_decision with Driver.Subsumed _ -> true | _ -> false

let analyze_with_cache t w (rq : Protocol.request) =
  let s = w.w_session in
  let info = Session.proginfo s in
  let pd = Lazy.force w.w_digest in
  let prog_digest = Progdigest.program_digest pd in
  let config_digest =
    Progdigest.config_digest ~hierarchical:(Session.hierarchical s) (Session.config s)
  in
  let spec_digest = Progdigest.spec_digest (Session.spec s) in
  let key_of (loop : Dca_analysis.Loops.loop) =
    Progdigest.loop_key pd ~config_digest ~spec_digest ~func:loop.Dca_analysis.Loops.l_func
      ~loop_id:loop.Dca_analysis.Loops.l_id
  in
  (* A fault-carrying request runs outside the cache entirely: hits would
     mask the injected failures it exists to exercise, and storing its
     (possibly Aborted) verdicts would poison later requests. *)
  let cache_on = rq.Protocol.rq_faults = None in
  (* probe phase: sequential, before any parallel work — the resolved
     table is read-only by the time worker domains consult it *)
  let resolved : (string, Driver.loop_result) Hashtbl.t = Hashtbl.create 16 in
  let provenances : (string, Report.provenance) Hashtbl.t = Hashtbl.create 16 in
  if cache_on && not rq.Protocol.rq_no_cache then
    List.iter
      (fun ((_, loop) : Dca_analysis.Proginfo.func_info * Dca_analysis.Loops.loop) ->
        match Vcache.find t.cache ~prog_digest (key_of loop) with
        | Some e ->
            Hashtbl.replace provenances loop.Dca_analysis.Loops.l_id e.Vcache.e_provenance;
            Hashtbl.replace resolved loop.Dca_analysis.Loops.l_id
              {
                Driver.lr_loop = loop;
                lr_label = Dca_analysis.Proginfo.loop_label info loop;
                lr_decision = e.Vcache.e_decision;
                lr_outcome = e.Vcache.e_outcome;
              }
        | None -> ())
      (Dca_analysis.Proginfo.all_loops info);
  let lookup _fi (loop : Dca_analysis.Loops.loop) =
    Hashtbl.find_opt resolved loop.Dca_analysis.Loops.l_id
  in
  let results =
    Driver.analyze_program ~config:(Session.config s) ~spec:(Session.spec s)
      ~hierarchical:(Session.hierarchical s) ?pool:(Session.pool s) ~lookup info
  in
  (* store phase: every freshly computed, non-subsumed verdict.  Subsumed
     results are skipped — they are free to recompute and derive from
     sibling verdicts rather than from the loop's own code. *)
  let hits = ref 0 and misses = ref 0 in
  let loops =
    List.map
      (fun (r : Driver.loop_result) ->
        let id = r.Driver.lr_loop.Dca_analysis.Loops.l_id in
        let cached = Hashtbl.mem resolved id in
        let provenance =
          Option.value (Hashtbl.find_opt provenances id) ~default:Report.Dynamic
        in
        if cached then incr hits
        else if not (subsumed r) then begin
          incr misses;
          if cache_on then
            Vcache.store t.cache (key_of r.Driver.lr_loop)
            {
              Vcache.e_decision = r.Driver.lr_decision;
              e_outcome = r.Driver.lr_outcome;
              e_provenance = Report.Dynamic;
              e_prog_digest = prog_digest;
            }
        end;
        {
          Protocol.li_label = r.Driver.lr_label;
          li_decision = Driver.decision_to_string r.Driver.lr_decision;
          li_cached = cached;
          li_provenance = provenance;
        })
      results
  in
  {
    eo_report = Report.to_string results;
    eo_loops = loops;
    eo_hits = !hits;
    eo_misses = !misses;
  }

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let stats t =
  let c = Vcache.stats t.cache in
  [
    ("serve.requests", t.requests);
    ("serve.aborted_requests", t.aborted_requests);
    ("serve.warm_sessions", Hashtbl.length t.sessions);
    ("serve.session_reuses", t.session_reuses);
    ("cache.mem_entries", Vcache.size t.cache);
    ("cache.mem_hits", c.Vcache.st_mem_hits);
    ("cache.disk_hits", c.Vcache.st_disk_hits);
    ("cache.misses", c.Vcache.st_misses);
    ("cache.stores", c.Vcache.st_stores);
    ("cache.corrupt", c.Vcache.st_corrupt);
    ("cache.evictions", c.Vcache.st_evictions);
  ]

(* Per-request fault containment: a request's fault plan is armed for
   exactly that request; whatever escapes every inner containment layer
   (loop-level Aborted verdicts absorb most injected faults) is caught
   here and turned into an error *reply* — the daemon survives and the
   next request starts from a clean faultpoint state. *)
let handle t (rq : Protocol.request) =
  t.requests <- t.requests + 1;
  let id = rq.Protocol.rq_id in
  let t0 = Telemetry.now_ns () in
  let finish rp = { rp with Protocol.rp_elapsed_ns = Telemetry.now_ns () - t0 } in
  match rq.Protocol.rq_op with
  | Protocol.Ping -> finish (Protocol.ok_response ~id)
  | Protocol.Stats -> finish { (Protocol.ok_response ~id) with Protocol.rp_counters = stats t }
  | Protocol.Shutdown -> finish (Protocol.ok_response ~id)
  | Protocol.Analyze -> (
      let faults_armed = rq.Protocol.rq_faults <> None in
      let result =
        try
          (match rq.Protocol.rq_faults with
          | Some plan ->
              Faultpoint.arm_string plan;
              Faultpoint.reset_hits ()
          | None -> ());
          match resolve_program (Option.get rq.Protocol.rq_program) with
          | Error msg -> Error msg
          | Ok (file, source, input) ->
              let options = options_of_request t rq in
              let w = warm_session t ~file ~source ~input options in
              Ok (analyze_with_cache t w rq)
        with
        | Faultpoint.Bad_plan msg -> Error ("invalid fault plan: " ^ msg)
        | Dca_frontend.Loc.Error (loc, msg) ->
            Error (Dca_frontend.Loc.to_string loc ^ ": " ^ msg)
        | Dca_interp.Eval.Trap msg -> Error ("runtime trap: " ^ msg)
        | Dca_interp.Eval.Out_of_fuel -> Error "execution exceeded the fuel bound"
        | Dca_interp.Eval.Deadline_exceeded -> Error "execution exceeded the wall-clock deadline"
        | Dca_interp.Eval.Heap_exhausted -> Error "execution exceeded the heap budget"
        | e -> Error ("internal error: " ^ Printexc.to_string e)
      in
      if faults_armed then Faultpoint.disarm ();
      match result with
      | Ok eo ->
          finish
            {
              (Protocol.ok_response ~id) with
              Protocol.rp_report = Some eo.eo_report;
              rp_loops = eo.eo_loops;
              rp_hits = eo.eo_hits;
              rp_misses = eo.eo_misses;
            }
      | Error msg ->
          t.aborted_requests <- t.aborted_requests + 1;
          finish (Protocol.error_response ~id msg))
