lib/baselines/registry.ml: Depprofiling_tool Discopop_tool Icc_tool Idioms_tool List Polly_tool Tool
