open Dca_support
open Dca_ir

type reduction_op = Rsum | Rprod | Rmin | Rmax

type classification = Induction | Private | Reduction of reduction_op | Carried

let reduction_op_to_string = function
  | Rsum -> "+"
  | Rprod -> "*"
  | Rmin -> "min"
  | Rmax -> "max"

(* Does instruction [i] combine variable [vid] with something else (not
   [vid] itself) under a commutative operator? *)
let combine_pattern vid (i : Ir.instr) : reduction_op option =
  let other_side a b =
    match (a, b) with
    | Ir.Ovar v, e when v.Ir.vid = vid -> (
        match e with Ir.Ovar v' when v'.Ir.vid = vid -> None | _ -> Some ())
    | e, Ir.Ovar v when v.Ir.vid = vid -> (
        match e with Ir.Ovar v' when v'.Ir.vid = vid -> None | _ -> Some ())
    | _ -> None
  in
  match i.Ir.idesc with
  | Ir.Bin (_, (Ir.Add | Ir.Fadd), a, b) -> Option.map (fun () -> Rsum) (other_side a b)
  | Ir.Bin (_, (Ir.Sub | Ir.Fsub), Ir.Ovar v, e) when v.Ir.vid = vid -> (
      match e with Ir.Ovar v' when v'.Ir.vid = vid -> None | _ -> Some Rsum)
  | Ir.Bin (_, (Ir.Mul | Ir.Fmul), a, b) -> Option.map (fun () -> Rprod) (other_side a b)
  | Ir.Call (_, ("fmin" | "imin"), [ a; b ]) -> Option.map (fun () -> Rmin) (other_side a b)
  | Ir.Call (_, ("fmax" | "imax"), [ a; b ]) -> Option.map (fun () -> Rmax) (other_side a b)
  | _ -> None

let classify_loop cfg affine liveness (l : Loops.loop) =
  let live_in_header = Liveness.live_in liveness l.Loops.l_header in
  let loop_instrs = Loops.instrs_of cfg l in
  let defined = Liveness.loop_defs liveness l in
  let iv = Affine.induction_var affine l in
  (* unique in-loop definition per variable id *)
  let unique_def =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun i ->
        match Ir.def_of i.Ir.idesc with
        | Some v -> Hashtbl.replace tbl v.Ir.vid (if Hashtbl.mem tbl v.Ir.vid then None else Some i)
        | None -> ())
      loop_instrs;
    fun vid -> Option.join (Hashtbl.find_opt tbl vid)
  in
  (* A reduction update of [vid] is either a direct combine instruction
     defining [vid], or (as lowering emits) [t = combine(vid, e); vid = t].
     Returns the operator and the update group (the instructions whose
     uses of [vid] are legitimate). *)
  let update_group_of (def : Ir.instr) vid : (reduction_op * Ir.instr list) option =
    match combine_pattern vid def with
    | Some op when Ir.def_of def.Ir.idesc |> Option.fold ~none:false ~some:(fun v -> v.Ir.vid = vid)
      ->
        Some (op, [ def ])
    | _ -> (
        match def.Ir.idesc with
        | Ir.Mov (d, Ir.Ovar tmp) when d.Ir.vid = vid -> (
            match unique_def tmp.Ir.vid with
            | Some u -> (
                match combine_pattern vid u with Some op -> Some (op, [ def; u ]) | None -> None)
            | None -> None)
        | _ -> None)
  in
  let classify vid =
    match iv with
    | Some (v, _) when v.Ir.vid = vid -> Induction
    | _ ->
        if not (Intset.mem vid live_in_header) then Private
        else begin
          let defs =
            List.filter
              (fun i ->
                Ir.def_of i.Ir.idesc |> Option.fold ~none:false ~some:(fun v -> v.Ir.vid = vid))
              loop_instrs
          in
          let groups = List.map (fun d -> update_group_of d vid) defs in
          if defs = [] || List.exists (fun g -> g = None) groups then Carried
          else begin
            let ops = List.map (fun g -> fst (Option.get g)) groups in
            let members =
              List.concat_map (fun g -> List.map (fun i -> i.Ir.iid) (snd (Option.get g))) groups
            in
            let uses_elsewhere =
              List.exists
                (fun i ->
                  (not (List.mem i.Ir.iid members))
                  && List.exists (fun v -> v.Ir.vid = vid) (Ir.uses_of i.Ir.idesc))
                loop_instrs
              || Intset.exists
                   (fun b ->
                     List.exists
                       (fun v -> v.Ir.vid = vid)
                       (Ir.term_uses (Cfg.block cfg b).Ir.bterm))
                   l.Loops.l_blocks
            in
            match ops with
            | [] -> Carried
            | first :: rest ->
                if (not uses_elsewhere) && List.for_all (fun o -> o = first) rest then
                  Reduction first
                else Carried
          end
        end
  in
  Intset.fold (fun vid acc -> (vid, classify vid) :: acc) defined [] |> List.rev

let carried_scalars cfg affine liveness l =
  classify_loop cfg affine liveness l
  |> List.filter_map (fun (vid, c) -> if c = Carried then Some vid else None)
