lib/analysis/deptest.ml: Affine List Printf
