(** Affine (scalar-evolution-lite) analysis of loop nests.

    Recognizes basic induction variables ([v = v + c] with constant step),
    expresses integer expressions as affine combinations of induction
    variables and loop-invariant symbols by walking def chains, and
    resolves memory-access addresses to a {e root object} plus an affine
    subscript.  This is the machinery behind the Polly-like and ICC-like
    static baselines (paper §V-A): an access that cannot be brought into
    this form defeats them, which is exactly what PLDS traversals do. *)

type term =
  | Tiv of string  (** induction variable of the loop with this id *)
  | Tsym of int  (** loop-invariant variable (by id) *)
  | Tglob of int  (** global scalar (by slot) not stored to inside the loop *)

type affine = { coeffs : (term * int) list;  (** sorted, no zero coefficients *) const : int }

type root =
  | Rglobal of int  (** global slot *)
  | Ralloc of int  (** allocation site (instruction id) *)
  | Rparam of int  (** pointer parameter (variable id) *)
  | Runknown  (** pointer loaded from memory or otherwise untraceable *)

type access = {
  acc_iid : int;
  acc_write : bool;
  acc_root : root;
  acc_subscript : affine option;  (** [None] if not affine *)
  acc_loc : Dca_frontend.Loc.t;
}

type t

val analyze : Dca_ir.Cfg.t -> Loops.forest -> t

val induction_var : t -> Loops.loop -> (Dca_ir.Ir.var * int) option
(** The loop's basic induction variable and its constant step, if the loop
    has exactly one. *)

val is_loop_invariant : t -> Loops.loop -> Dca_ir.Ir.var -> bool
(** No definition of the variable inside the loop. *)

val affine_of_operand : t -> Loops.loop -> Dca_ir.Ir.operand -> affine option
(** Affine form of an integer operand relative to the loop nest containing
    [loop] (induction variables of [loop] and its ancestors appear as
    [Tiv]; variables invariant in [loop] as [Tsym]). *)

val accesses_of_loop : t -> Loops.loop -> access list
(** All heap/global memory accesses (loads and stores) textually inside the
    loop, with resolved roots and subscripts.  Global-scalar accesses are
    included as [Rglobal] with constant subscript 0. *)

val counted_header : t -> Loops.loop -> bool
(** The loop has a single induction variable tested against a
    loop-invariant bound in its header — the "well-formed counted loop"
    precondition of the polyhedral baseline. *)

val affine_equal : affine -> affine -> bool
val affine_sub : affine -> affine -> affine
val pp_affine : Format.formatter -> affine -> unit
