lib/dca/schedule.mli:
