(** Dependence-profiling baseline in the style of Tournavitis et al.
    (PLDI 2009; paper §V-A): profile-driven dependence detection with
    privatization of WAR/WAW locations, generalized induction-variable
    filtering, and Pottenger-style reduction recognition: scalar
    sum/product/min/max reductions (including register-promoted global
    scalars) and array-cell read-modify-write reductions.

    PLDS traversals defeat the tool exactly as in the paper's Fig. 1(b):
    the [p = p->next] update is a cross-iteration RAW on [p] that no
    filter covers. *)

open Dca_analysis
open Dca_support

let name = "DepProfiling"

let filters_of fi (loop : Loops.loop) =
  let classes =
    Scalars.classify_loop fi.Proginfo.fi_cfg fi.Proginfo.fi_affine fi.Proginfo.fi_live loop
  in
  let tolerated =
    List.filter_map
      (fun (vid, c) ->
        match c with
        | Scalars.Induction | Scalars.Reduction _ -> Some vid
        | Scalars.Private | Scalars.Carried -> None)
      classes
    |> Intset.of_list
  in
  let rmws = Memred.find fi.Proginfo.fi_cfg fi.Proginfo.fi_affine loop in
  {
    Dynamic_common.fl_scalar_ok = (fun vid -> Intset.mem vid tolerated);
    fl_rmw_pairs = Memred.iid_pairs rmws;
  }

let tool =
  {
    Tool.tool_name = name;
    tool_static = false;
    tool_analyze =
      (fun info profile ->
        match profile with
        | None -> invalid_arg "DepProfiling requires a dynamic profile"
        | Some p -> Tool.per_loop info (Dynamic_common.classify_with p filters_of info));
  }
