lib/interp/eval.mli: Dca_ir Events Store Value
