open Dca_frontend
open Ast

let ( ++ ) = Seq.append

(* ------------------------------------------------------------------ *)
(* Termination measure                                                 *)
(* ------------------------------------------------------------------ *)

let madd (a, b) (c, d) = (a + c, b + d)

let rec expr_size e =
  match e.edesc with
  | Eint n -> (1, min (abs n) 1000)
  | Efloat _ | Enull | Evar _ | Enew_struct _ -> (1, 0)
  | Eunop (_, x) -> madd (1, 0) (expr_size x)
  | Ebinop (_, l, r) -> madd (1, 0) (madd (expr_size l) (expr_size r))
  | Eindex (b, i) -> madd (1, 0) (madd (expr_size b) (expr_size i))
  | Efield (b, _) | Earrow (b, _) -> madd (1, 0) (expr_size b)
  | Ecall (_, args) -> List.fold_left (fun acc a -> madd acc (expr_size a)) (1, 0) args
  | Enew_array (_, c) -> madd (1, 0) (expr_size c)

let rec stmt_size s =
  match s.sdesc with
  | Sdecl (_, _, None) | Sprints _ | Sbreak | Scontinue | Sreturn None -> (1, 0)
  | Sdecl (_, _, Some e) | Sexpr e | Sreturn (Some e) -> madd (1, 0) (expr_size e)
  | Sassign (l, r) -> madd (1, 0) (madd (expr_size l) (expr_size r))
  | Sif (c, t, e) -> madd (1, 0) (madd (expr_size c) (madd (stmts_size t) (stmts_size e)))
  | Swhile (c, b) -> madd (1, 0) (madd (expr_size c) (stmts_size b))
  | Sfor (i, c, st, b) ->
      let opt f = function None -> (0, 0) | Some x -> f x in
      madd (1, 0)
        (madd (opt stmt_size i) (madd (opt expr_size c) (madd (opt stmt_size st) (stmts_size b))))
  | Sblock b -> madd (1, 0) (stmts_size b)

and stmts_size l = List.fold_left (fun acc s -> madd acc (stmt_size s)) (0, 0) l

let size (p : program) =
  List.fold_left (fun acc f -> madd acc (stmts_size f.f_body)) (0, 0) p.funcs

(* ------------------------------------------------------------------ *)
(* One-step reductions                                                 *)
(* ------------------------------------------------------------------ *)

(* Variants of a list where exactly one element was replaced. *)
let list_variants1 f l =
  let rec go prefix = function
    | [] -> Seq.empty
    | x :: rest ->
        Seq.map (fun x' -> List.rev_append prefix (x' :: rest)) (f x)
        ++ fun () -> go (x :: prefix) rest ()
  in
  go [] l

(* Variants of a list where exactly one element was dropped. *)
let list_drop1 l =
  let rec go prefix = function
    | [] -> Seq.empty
    | x :: rest -> Seq.cons (List.rev_append prefix rest) (fun () -> go (x :: prefix) rest ())
  in
  go [] l

let rec expr_variants e0 =
  let w d = { e0 with edesc = d } in
  match e0.edesc with
  | Eint n when n <> 0 -> Seq.return (w (Eint 0))
  | Eint _ | Efloat _ | Enull | Evar _ | Enew_struct _ -> Seq.empty
  | Eunop (op, x) -> Seq.cons x (Seq.map (fun x' -> w (Eunop (op, x'))) (expr_variants x))
  | Ebinop (op, l, r) ->
      (* replacing an arithmetic node by one operand is type-preserving
         whenever the candidate still type-checks — keep decides *)
      let drops =
        match op with
        | Add | Sub | Mul | And | Or -> List.to_seq [ l; r ]
        | Div | Mod -> Seq.return l
        | Eq | Ne | Lt | Le | Gt | Ge -> Seq.empty
      in
      drops
      ++ Seq.map (fun l' -> w (Ebinop (op, l', r))) (expr_variants l)
      ++ Seq.map (fun r' -> w (Ebinop (op, l, r'))) (expr_variants r)
  | Eindex (b, i) ->
      Seq.map (fun i' -> w (Eindex (b, i'))) (expr_variants i)
      ++ Seq.map (fun b' -> w (Eindex (b', i))) (expr_variants b)
  | Efield (b, f) -> Seq.map (fun b' -> w (Efield (b', f))) (expr_variants b)
  | Earrow (b, f) -> Seq.map (fun b' -> w (Earrow (b', f))) (expr_variants b)
  | Ecall (f, args) -> Seq.map (fun args' -> w (Ecall (f, args'))) (list_variants1 expr_variants args)
  | Enew_array (t, c) -> Seq.map (fun c' -> w (Enew_array (t, c'))) (expr_variants c)

let rec stmt_variants s0 =
  let w d = { s0 with sdesc = d } in
  match s0.sdesc with
  | Sdecl (ty, n, Some e0) ->
      Seq.cons
        (w (Sdecl (ty, n, None)))
        (Seq.map (fun e' -> w (Sdecl (ty, n, Some e'))) (expr_variants e0))
  | Sdecl (_, _, None) | Sprints _ | Sbreak | Scontinue | Sreturn None -> Seq.empty
  | Sassign (l, r) ->
      Seq.map (fun r' -> w (Sassign (l, r'))) (expr_variants r)
      ++ Seq.map (fun l' -> w (Sassign (l', r))) (expr_variants l)
  | Sif (c, t, e) ->
      Seq.cons
        (w (Sblock t))
        ((if e = [] then Seq.empty else Seq.return (w (Sblock e)))
        ++ Seq.map (fun c' -> w (Sif (c', t, e))) (expr_variants c)
        ++ Seq.map (fun t' -> w (Sif (c, t', e))) (stmts_variants t)
        ++ Seq.map (fun e' -> w (Sif (c, t, e'))) (stmts_variants e))
  | Swhile (c, b) ->
      Seq.cons
        (w (Sblock b))
        (Seq.map (fun c' -> w (Swhile (c', b))) (expr_variants c)
        ++ Seq.map (fun b' -> w (Swhile (c, b'))) (stmts_variants b))
  | Sfor (init, cond, step, b) ->
      (* decrement a literal counted bound: shaves iterations off both
         inner loops and the marked loop without leaving canonical form *)
      let bound_dec =
        match cond with
        | Some ({ edesc = Ebinop (Lt, lv, ({ edesc = Eint n; _ } as ne)); _ } as c0) when n > 1 ->
            Seq.return
              (w
                 (Sfor
                    ( init,
                      Some { c0 with edesc = Ebinop (Lt, lv, { ne with edesc = Eint (n - 1) }) },
                      step,
                      b )))
        | _ -> Seq.empty
      in
      bound_dec ++ Seq.map (fun b' -> w (Sfor (init, cond, step, b'))) (stmts_variants b)
  | Sblock b -> Seq.map (fun b' -> w (Sblock b')) (stmts_variants b)
  | Sexpr e0 -> Seq.map (fun e' -> w (Sexpr e')) (expr_variants e0)
  | Sreturn (Some e0) ->
      Seq.cons (w (Sreturn None)) (Seq.map (fun e' -> w (Sreturn (Some e'))) (expr_variants e0))

and stmts_variants stmts = list_drop1 stmts ++ list_variants1 stmt_variants stmts

let program_variants (p : program) =
  Seq.map
    (fun funcs -> { p with funcs })
    (list_variants1
       (fun f -> Seq.map (fun b -> { f with f_body = b }) (stmts_variants f.f_body))
       p.funcs)

(* ------------------------------------------------------------------ *)
(* Greedy driver                                                       *)
(* ------------------------------------------------------------------ *)

let lt (a, b) (c, d) = a < c || (a = c && b < d)

let program ~keep ?(max_evals = 400) p0 =
  let evals = ref 0 in
  let rec improve p =
    let sz = size p in
    let rec search vars =
      if !evals >= max_evals then None
      else
        match Seq.uncons vars with
        | None -> None
        | Some (cand, rest) ->
            if not (lt (size cand) sz) then search rest
            else begin
              incr evals;
              if keep cand then Some cand else search rest
            end
    in
    match search (program_variants p) with Some better -> improve better | None -> p
  in
  improve p0
