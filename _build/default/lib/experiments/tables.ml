open Dca_core
open Dca_progs

type t1_row = { t1_name : string; t1_loops : int; t1_depprof : int; t1_discopop : int; t1_dca : int }

let npb_evals () = List.map (fun bm -> (bm, Evaluation.evaluate_cached bm)) Registry.npb
let plds_evals () = List.map (fun bm -> (bm, Evaluation.evaluate_cached bm)) Registry.plds

let table1 () =
  List.map
    (fun (bm, ev) ->
      {
        t1_name = bm.Benchmark.bm_name;
        t1_loops = Evaluation.total_loops ev;
        t1_depprof = List.length (Evaluation.tool_parallel ev "DepProfiling");
        t1_discopop = List.length (Evaluation.tool_parallel ev "DiscoPoP");
        t1_dca = List.length (Evaluation.dca_commutative ev);
      })
    (npb_evals ())

let render_table1 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table I: NPB loops reported parallelizable by the dynamic baselines and commutative by DCA\n";
  Buffer.add_string buf
    "            --------- measured ---------      --------- paper ---------\n";
  Buffer.add_string buf
    (Printf.sprintf "%-6s %6s %8s %9s %6s   | %6s %8s %9s %6s\n" "Bench" "Loops" "DepProf"
       "DiscoPoP" "DCA" "Loops" "DepProf" "DiscoPoP" "DCA");
  let totals = ref (0, 0, 0, 0) in
  List.iter
    (fun r ->
      let p = Paper_data.npb_row r.t1_name in
      let fmt_opt = function Some n -> string_of_int n | None -> "-" in
      let a, b, c, d = !totals in
      totals := (a + r.t1_loops, b + r.t1_depprof, c + r.t1_discopop, d + r.t1_dca);
      Buffer.add_string buf
        (Printf.sprintf "%-6s %6d %8d %9d %6d   | %6d %8s %9s %6d\n" r.t1_name r.t1_loops
           r.t1_depprof r.t1_discopop r.t1_dca p.Paper_data.p_loops
           (fmt_opt p.Paper_data.p_depprof)
           (fmt_opt p.Paper_data.p_discopop)
           p.Paper_data.p_dca))
    rows;
  let a, b, c, d = !totals in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %6d %8d %9d %6d   | %6d %8d %9d %6d\n" "Total" a b c d 1397 696 720 1203);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type t2_row = {
  t2_name : string;
  t2_function : string;
  t2_dca_detects : bool;
  t2_baselines_detect : int;
  t2_coverage : float;
  t2_skeleton : string;
}

(* The hot loop of each PLDS program: the most expensive DCA-commutative
   loop, preferring loops inside a named kernel function over the driver
   loops of [main] (whose dynamic extent subsumes their callees'). *)
let hot_commutative ev =
  let scored =
    Evaluation.dca_commutative ev
    |> List.map (fun id ->
           let cost =
             match Dca_profiling.Depprof.loop_profile ev.Evaluation.ev_profile id with
             | Some lp -> lp.Dca_profiling.Depprof.lp_total_cost
             | None -> 0
           in
           (id, cost))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let in_main id =
    match Dca_analysis.Proginfo.loop_by_id ev.Evaluation.ev_info id with
    | Some (_, l) -> l.Dca_analysis.Loops.l_func = "main"
    | None -> true
  in
  match List.filter (fun (id, _) -> not (in_main id)) scored with
  | (id, _) :: _ -> Some id
  | [] -> ( match scored with (id, _) :: _ -> Some id | [] -> None)

let table2 () =
  List.map
    (fun (bm, ev) ->
      let hot = hot_commutative ev in
      let baselines_detecting_hot =
        match hot with
        | None -> []
        | Some id ->
            List.filter
              (fun (_, results) -> List.mem id (Dca_baselines.Tool.parallel_ids results))
              ev.Evaluation.ev_tools
      in
      let hot_func, skeleton =
        match hot with
        | Some id -> (
            match Dca_analysis.Proginfo.loop_by_id ev.Evaluation.ev_info id with
            | Some (fi, l) ->
                let sk =
                  match
                    List.find_opt
                      (fun r -> r.Driver.lr_loop.Dca_analysis.Loops.l_id = id)
                      ev.Evaluation.ev_dca
                  with
                  | Some { Driver.lr_outcome = Some oc; _ } ->
                      Dca_core.Skeleton.shape_to_string
                        (Dca_core.Skeleton.classify ev.Evaluation.ev_info fi oc).Dca_core.Skeleton.sk_shape
                  | _ -> "?"
                in
                (l.Dca_analysis.Loops.l_func, sk)
            | None -> ("?", "?"))
        | None -> ("?", "?")
      in
      {
        t2_name = bm.Benchmark.bm_name;
        t2_function = hot_func;
        t2_dca_detects = hot <> None;
        t2_baselines_detect = List.length baselines_detecting_hot;
        t2_coverage = Evaluation.coverage ev (Evaluation.dca_commutative ev);
        t2_skeleton = skeleton;
      })
    (plds_evals ())

let render_table2 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table II: PLDS loops detected as commutative by DCA while the baselines fail\n";
  Buffer.add_string buf
    (Printf.sprintf "%-14s %-14s %-24s %-20s %5s %9s %7s | %6s %-14s %-16s\n" "Bench" "Origin"
       "Hot function (ours)" "Skeleton" "DCA" "Baseline" "Cov%" "Cov%" "Potential" "Expert technique");
  List.iter
    (fun r ->
      let p = Paper_data.plds_row r.t2_name in
      Buffer.add_string buf
        (Printf.sprintf "%-14s %-14s %-24s %-20s %5s %7d/5 %6.0f%% | %5d%% %-14s %-16s\n" r.t2_name
           p.Paper_data.q_origin r.t2_function r.t2_skeleton
           (if r.t2_dca_detects then "yes" else "NO")
           r.t2_baselines_detect (100.0 *. r.t2_coverage) p.Paper_data.q_coverage
           p.Paper_data.q_potential p.Paper_data.q_technique))
    rows;
  Buffer.add_string buf
    "(Baseline column: how many of the five baseline tools detect the hot PLDS loop;\n\
    \ the paper reports zero for all entries.  Right block: paper Table II reference.)\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type t3_row = {
  t3_name : string;
  t3_loops : int;
  t3_idioms : int;
  t3_polly : int;
  t3_icc : int;
  t3_combined : int;
  t3_dca : int;
}

let table3 () =
  List.map
    (fun (bm, ev) ->
      {
        t3_name = bm.Benchmark.bm_name;
        t3_loops = Evaluation.total_loops ev;
        t3_idioms = List.length (Evaluation.tool_parallel ev "Idioms");
        t3_polly = List.length (Evaluation.tool_parallel ev "Polly");
        t3_icc = List.length (Evaluation.tool_parallel ev "ICC");
        t3_combined = List.length (Evaluation.combined_static ev);
        t3_dca = List.length (Evaluation.dca_commutative ev);
      })
    (npb_evals ())

let render_table3 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table III: NPB loops reported parallelizable by the static baselines and commutative by DCA\n";
  Buffer.add_string buf
    (Printf.sprintf "%-6s %6s %7s %6s %5s %9s %5s   | paper: %5s %5s %4s %8s %5s\n" "Bench"
       "Loops" "Idioms" "Polly" "ICC" "Combined" "DCA" "Idm" "Pol" "ICC" "Combined" "DCA");
  let tot = ref (0, 0, 0, 0, 0, 0) in
  List.iter
    (fun r ->
      let p = Paper_data.npb_row r.t3_name in
      let a, b, c, d, e, f = !tot in
      tot :=
        (a + r.t3_loops, b + r.t3_idioms, c + r.t3_polly, d + r.t3_icc, e + r.t3_combined, f + r.t3_dca);
      Buffer.add_string buf
        (Printf.sprintf "%-6s %6d %7d %6d %5d %9d %5d   |        %5d %5d %4d %8d %5d\n" r.t3_name
           r.t3_loops r.t3_idioms r.t3_polly r.t3_icc r.t3_combined r.t3_dca p.Paper_data.p_idioms
           p.Paper_data.p_polly p.Paper_data.p_icc p.Paper_data.p_combined p.Paper_data.p_dca))
    rows;
  let a, b, c, d, e, f = !tot in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %6d %7d %6d %5d %9d %5d   |        %5d %5d %4d %8d %5d\n" "Total" a b c d
       e f 74 169 478 611 1203);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type t4_row = {
  t4_name : string;
  t4_loops : int;
  t4_found : int;
  t4_false_pos : int;
  t4_false_neg : int;
  t4_dca_coverage : float;
  t4_static_coverage : float;
}

let table4 () =
  List.map
    (fun (bm, ev) ->
      let commutative = Evaluation.dca_commutative ev in
      let sequential = Evaluation.known_sequential_ids ev in
      let false_pos = List.filter (fun id -> List.mem id sequential) commutative in
      (* ground truth: every loop not annotated order-dependent is
         parallelizable; a false negative is a loop DCA actively claims
         non-commutative although it is not annotated (rejected and
         untestable loops are out of scope, as in the paper) *)
      let false_neg =
        List.filter
          (fun r ->
            match r.Driver.lr_decision with
            | Driver.Non_commutative _ ->
                not (List.mem r.Driver.lr_loop.Dca_analysis.Loops.l_id sequential)
            | _ -> false)
          ev.Evaluation.ev_dca
      in
      {
        t4_name = bm.Benchmark.bm_name;
        t4_loops = Evaluation.total_loops ev;
        t4_found = List.length commutative;
        t4_false_pos = List.length false_pos;
        t4_false_neg = List.length false_neg;
        t4_dca_coverage = Evaluation.coverage ev commutative;
        t4_static_coverage = Evaluation.coverage ev (Evaluation.combined_static ev);
      })
    (npb_evals ())

let render_table4 rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table IV: DCA detection precision and sequential coverage (NPB)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-6s %6s %6s %5s %5s %9s %11s   | paper: %6s %10s\n" "Bench" "Loops" "Found"
       "FP" "FN" "DCA-cov%" "Static-cov%" "DCA-cov" "Static-cov");
  List.iter
    (fun r ->
      let p = Paper_data.npb_row r.t4_name in
      Buffer.add_string buf
        (Printf.sprintf "%-6s %6d %6d %5d %5d %8.0f%% %10.0f%%   |        %5d%% %9d%%\n" r.t4_name
           r.t4_loops r.t4_found r.t4_false_pos r.t4_false_neg (100.0 *. r.t4_dca_coverage)
           (100.0 *. r.t4_static_coverage) p.Paper_data.p_dca_coverage
           p.Paper_data.p_static_coverage))
    rows;
  Buffer.contents buf
