(** Seeded, sized generator of well-typed MiniC loop programs.

    Every generated program is a single [main] containing one {e marked}
    loop under test in the canonical counted form

    {v
      prints("DCA_FUZZ_LOOP");
      for (int i = 0; i < n; i = i + 1) { <body> }
    v}

    preceded by deterministic array/scalar/list setup and followed by an
    epilogue that prints {e every} live-out (scalars, arrays, list
    payloads).  Printing the live-outs makes whole-program output equality
    coincide with live-out state equality, which is what lets the
    {!Oracle} decide ground-truth commutativity by re-running unrolled
    program variants instead of reusing any of DCA's replay machinery.

    The body is assembled from 1–3 independently drawn {e clauses}
    covering the loop shapes the pipeline claims to handle: disjoint
    affine array writes, indirectly indexed writes, same-cell writes,
    scalar and float reductions, order-dependent carried updates,
    conditional writes, PLDS-style pointer chases over a freshly built
    linked list, nested inner loops, and (rarely) I/O inside the loop to
    exercise the static-rejection path.

    All randomness comes from the caller's {!Dca_support.Prng.t}; equal
    states generate equal programs.  Every program is type-checked before
    being returned — generation of an ill-typed program is a bug and
    raises. *)

type recipe =
  | Affine  (** disjoint (injective-index) array write *)
  | Indirect  (** write through a prefilled index array (may collide) *)
  | Same_cell  (** write to one fixed cell *)
  | Reduction  (** [s = s op e] with [op] order-insensitive; int or float *)
  | Carried  (** order-dependent scalar/array update *)
  | Cond  (** conditional wrapper around another clause *)
  | Chase  (** walk-to-i pointer chase over a linked list *)
  | Nest  (** inner counted loop *)
  | Io_inside  (** I/O in the body: statically rejected by DCA *)

val recipe_to_string : recipe -> string

type t = {
  g_prog : Dca_frontend.Ast.program;  (** well-typed by construction *)
  g_source : string;  (** [Ast_printer] rendering of [g_prog] *)
  g_recipes : recipe list;  (** clauses of the loop body, in order *)
  g_trip : int;  (** static trip count of the marked loop *)
}

val marker : string
(** The [prints] payload marking the loop under test
    (["DCA_FUZZ_LOOP"]). *)

val array_size : int
(** Length of every generated array (8); trip counts never exceed it. *)

val generate : ?max_iters:int -> Dca_support.Prng.t -> t
(** [generate rng] draws one program.  [max_iters] (default 4, clamped to
    [2..7]) bounds the trip count of the marked loop so the oracle's
    exhaustive [n!] sweep stays affordable. *)
