(** Human-readable reports of DCA results (the "auxiliary reports" of
    paper §IV-A4). *)

type provenance = Driver.provenance = Dynamic | Static
(** How a verdict was established (re-exported from {!Driver}, which now
    stamps it on every result).  [Dynamic] — the record/replay stage ran
    (or its rejection/abort paths).  [Static] — the
    {!Dca_analysis.Staticproof} affine prover discharged the loop
    without running it.  The serve daemon's verdict cache stores the
    provenance with every entry, so a cached static verdict renders
    byte-identically to a freshly proved one. *)

val provenance_to_string : provenance -> string

val summary_line : Driver.loop_result -> string
(** One line per loop: label, depth, decision, and a provenance marker —
    the " [tested N invocation(s)...]" annotation for loops that reached
    the dynamic stage, an explicit " [static]" for statically proved
    ones.  Dynamic verdicts carry no extra marker beyond the outcome
    annotation, keeping Dynamic-only reports byte-identical to seed
    reports. *)

val counters : Driver.loop_result list -> (string * int) list
(** Work counters aggregated from the outcome records, in a fixed order:
    loop totals by decision, then the dynamic-stage effort (invocations,
    golden runs, replays, replay steps, skipped schedules, escalated
    loops, promotions).  A pure fold over the results — deterministic
    across worker counts and checkpoint modes, and available whether or
    not {!Dca_support.Telemetry} counting is enabled. *)

val footer_line : Driver.loop_result list -> string
(** [counters] rendered as the stable machine-readable report footer:
    ["counters: loops=7 commutative=3 ..."]. *)

val to_string : Driver.loop_result list -> string
(** Header, one {!summary_line} per loop, then {!footer_line}. *)

val print : Driver.loop_result list -> unit
