(** Whole-program speedup accounting on the machine model.

    The simulated parallel program time is the profiled sequential cost
    minus, for each planned loop, the difference between its dynamic
    extent's sequential cost and its simulated parallel makespan (scaled
    over all invocations).  Loops fused into one parallel section
    (whole-program expert plans, Fig. 7) share their launch overheads.
    An optional [extra_parallel (fraction, workers)] models expert
    restructuring beyond loop boundaries — pipelines, work-sharing
    sections — by running that fraction of the remaining serial time on
    the given number of workers. *)

type loop_stats = {
  ls_loop_id : string;
  ls_seq_cost : float;
  ls_par_cost : float;
  ls_saved : float;
}

type result = {
  sp_seq : float;
  sp_par : float;
  sp_speedup : float;
  sp_loops : loop_stats list;
}

val simulate :
  ?extra_parallel:float * int ->
  machine:Machine.t ->
  Dca_analysis.Proginfo.t ->
  Dca_profiling.Depprof.profile ->
  Plan.t ->
  result

val sequential_result : Dca_profiling.Depprof.profile -> result
(** The trivial speedup-1 result (for tools that parallelize nothing). *)
