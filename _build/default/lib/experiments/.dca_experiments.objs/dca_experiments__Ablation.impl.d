lib/experiments/ablation.ml: Benchmark Buffer Commutativity Dca_core Dca_parallel Dca_progs Evaluation List Printf Registry Schedule
