(** Greedy AST shrinker for failing fuzz programs.

    Given a predicate [keep] that re-checks whether a candidate program
    still exhibits the original failure, {!program} repeatedly tries
    one-step reductions — deleting a statement, collapsing an [if] to one
    branch, unwrapping a loop to its body, dropping an initializer,
    replacing an arithmetic expression by one operand, zeroing an integer
    literal, decrementing a loop bound — and commits the first reduction
    [keep] accepts, restarting until a whole pass yields nothing or the
    evaluation budget is spent.

    Every committed candidate is strictly smaller under the (node count,
    integer-literal mass) lexicographic measure, so shrinking terminates
    regardless of [keep].  [keep] is expected to treat ill-typed or
    otherwise broken candidates as failures (return [false]), which is
    what lets the moves stay type-oblivious. *)

val size : Dca_frontend.Ast.program -> int * int
(** The termination measure: (AST node count, summed magnitude of integer
    literals, capped per literal). *)

val program :
  keep:(Dca_frontend.Ast.program -> bool) ->
  ?max_evals:int ->
  Dca_frontend.Ast.program ->
  Dca_frontend.Ast.program
(** [program ~keep p] assumes [keep p = true] and returns a minimal (under
    the greedy strategy) program still accepted by [keep].  [max_evals]
    (default 400) bounds the number of [keep] evaluations. *)
