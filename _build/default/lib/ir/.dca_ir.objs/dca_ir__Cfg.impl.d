lib/ir/cfg.ml: Array Format Ir List
