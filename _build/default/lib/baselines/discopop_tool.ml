(** DiscoPoP-like baseline (Li et al., JSS 2016; paper §V-A).

    Like the dependence-profiling tool it classifies loops from profiled
    cross-iteration RAWs, but with a different trade-off, mirroring how the
    two tools' columns differ in Table I:

    - induction filtering covers only {e basic} induction variables (no
      generalized scalar classification), and min/max scalar reductions are
      not recognized — so DiscoPoP loses some loops DepProfiling finds;
    - reduction recognition extends to {e array cells} (its do-all pattern
      detection tolerates [a\[f(i)\] += e] updates), so it wins some loops
      DepProfiling misses. *)

open Dca_analysis
open Dca_support

let name = "DiscoPoP"

let filters_of fi (loop : Loops.loop) =
  let basic_iv =
    match Affine.induction_var fi.Proginfo.fi_affine loop with
    | Some (v, _) -> Intset.singleton v.Dca_ir.Ir.vid
    | None -> Intset.empty
  in
  (* sum/product scalar reductions only *)
  let classes =
    Scalars.classify_loop fi.Proginfo.fi_cfg fi.Proginfo.fi_affine fi.Proginfo.fi_live loop
  in
  let sum_reds =
    List.filter_map
      (fun (vid, c) ->
        match c with
        | Scalars.Reduction (Scalars.Rsum | Scalars.Rprod) -> Some vid
        | _ -> None)
      classes
    |> Intset.of_list
  in
  let tolerated = Intset.union basic_iv sum_reds in
  let rmws =
    Memred.find fi.Proginfo.fi_cfg fi.Proginfo.fi_affine loop
    |> List.filter (fun r ->
           match r.Memred.rmw_op with
           | Scalars.Rsum | Scalars.Rprod -> true
           | Scalars.Rmin | Scalars.Rmax -> false)
  in
  {
    Dynamic_common.fl_scalar_ok = (fun vid -> Intset.mem vid tolerated);
    fl_rmw_pairs = Memred.iid_pairs rmws;
  }

let tool =
  {
    Tool.tool_name = name;
    tool_static = false;
    tool_analyze =
      (fun info profile ->
        match profile with
        | None -> invalid_arg "DiscoPoP requires a dynamic profile"
        | Some p -> Tool.per_loop info (Dynamic_common.classify_with p filters_of info));
  }
