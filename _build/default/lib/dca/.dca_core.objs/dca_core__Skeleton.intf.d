lib/dca/skeleton.mli: Commutativity Dca_analysis
