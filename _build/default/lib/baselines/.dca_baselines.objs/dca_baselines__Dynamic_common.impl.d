lib/baselines/dynamic_common.ml: Dca_analysis Dca_interp Dca_profiling Depprof Events List Loops Printf Static_common Tool
