(** Ablations of the design decisions DESIGN.md §5 calls out:

    - {e verification mode}: strict loop-local live-out digests only
      vs. whole-program observational escalation (the default).  The
      strict mode loses worklist-reordering loops (BFS) — quantified as
      commutative-loop counts per suite;
    - {e permutation presets}: reverse-only vs. reverse+rotate+k shuffles.
      Fewer schedules can miss order dependences (paper §IV-B2's
      safety/cost trade-off) — quantified as loops a weaker preset calls
      commutative although the full preset refutes them;
    - {e machine model}: speedup sensitivity to the worker count and the
      spawn overhead (EP and BT as probes). *)

type verification_row = {
  ab_bench : string;
  ab_strict : int;  (** commutative loops without escalation *)
  ab_observational : int;  (** commutative loops with escalation (default) *)
}

val verification : unit -> verification_row list
val render_verification : verification_row list -> string

type schedule_row = {
  sc_bench : string;
  sc_reverse_only : int;  (** commutative under reverse-only testing *)
  sc_default : int;  (** commutative under the default preset *)
  sc_missed : int;  (** loops the weak preset wrongly keeps commutative *)
}

val schedules : unit -> schedule_row list
val render_schedules : schedule_row list -> string

type machine_row = { mc_workers : int; mc_spawn : float; mc_ep : float; mc_bt : float }

val machine_sweep : unit -> machine_row list
val render_machine_sweep : machine_row list -> string

type eps_row = {
  ep_bench : string;
  ep_exact : int;  (** commutative loops under bit-exact float comparison *)
  ep_tolerant : int;  (** commutative loops under the default relative tolerance *)
}

val float_tolerance : unit -> eps_row list
(** Permuting a floating-point reduction changes rounding, so bit-exact
    live-out comparison refutes genuinely commutative loops; the default
    relative tolerance recovers them (DESIGN.md §5.1). *)

val render_float_tolerance : eps_row list -> string
