(** Instrumentation interface of the interpreter.

    A sink receives the dynamic event stream: executed instructions,
    reads/writes classified by location, control transfers between blocks,
    and call boundaries.  The dependence profiler, the coverage profiler
    and DCA's dynamic stage are all sinks; running without a sink costs
    nothing but a branch per event site. *)

type loc =
  | Lheap of int * int  (** heap block, cell offset *)
  | Lglob of int  (** global-table slot (global scalars) *)
  | Lreg of int  (** frame variable, by variable id *)
  | Lrng  (** the [drand] generator state *)

type sink = {
  on_exec : Dca_ir.Ir.instr -> unit;
  on_read : loc -> int -> unit;
      (** location read by the instruction with the given id; [-1] when the
          read happens in a block terminator (condition evaluation) *)
  on_write : loc -> int -> unit;
  on_block : fname:string -> src:int -> dst:int -> unit;
      (** control transfer inside a function; [src = -1] on function entry *)
  on_call : string -> unit;
  on_return : string -> unit;
}

let null_sink =
  {
    on_exec = (fun _ -> ());
    on_read = (fun _ _ -> ());
    on_write = (fun _ _ -> ());
    on_block = (fun ~fname:_ ~src:_ ~dst:_ -> ());
    on_call = (fun _ -> ());
    on_return = (fun _ -> ());
  }

let loc_to_string = function
  | Lheap (b, o) -> Printf.sprintf "heap[%d:%d]" b o
  | Lglob s -> Printf.sprintf "glob[%d]" s
  | Lreg v -> Printf.sprintf "reg[%d]" v
  | Lrng -> "rng"

let compare_loc (a : loc) (b : loc) = compare a b
