(** ICC-like static auto-parallelization (paper §V-A).

    Models the Intel compiler at [-parallel] with the profitability
    threshold disabled: classic static dependence testing over affine
    subscripts, scalar privatization, sum/min/max/product scalar reductions
    (including register-promoted global scalars), and aggressive inlining
    of pure functions — a call inside the loop is tolerated when the callee
    neither writes memory nor performs I/O.  No array reductions and no
    histograms (the paper notes ICC misses the idioms IDIOMS finds), and no
    ability to analyze pointer-chasing loops. *)

open Dca_analysis

let name = "ICC"

let classify info fi (loop : Loops.loop) : Tool.verdict =
  let pur = Proginfo.purity info in
  if Static_common.loop_does_io info fi loop then Tool.Not_parallel "I/O inside loop"
  else begin
    match
      List.find_opt (fun callee -> not (Purity.pure pur callee)) (Static_common.calls_in fi loop)
    with
    | Some callee -> Tool.Not_parallel (Printf.sprintf "impure call to %s" callee)
    | None ->
        if not (Affine.counted_header fi.Proginfo.fi_affine loop) then
          Tool.Not_parallel "not a counted loop"
        else begin
          match
            Static_common.scalar_blocker fi loop ~reductions_ok:(fun _ -> true)
          with
          | Some why -> Tool.Not_parallel why
          | None -> begin
              (* exempt register-promotable global-scalar reductions only *)
              let rmws =
                Memred.find fi.Proginfo.fi_cfg fi.Proginfo.fi_affine loop
                |> List.filter (fun r ->
                       match r.Memred.rmw_kind with
                       | Memred.Global_scalar _ -> true
                       | Memred.Array_cell _ -> false)
              in
              match Static_common.memory_blocker fi loop ~exempt_rmws:rmws ~allow_unknown_roots:false with
              | Some why -> Tool.Not_parallel why
              | None -> Tool.Parallel
            end
        end
  end

let tool =
  {
    Tool.tool_name = name;
    tool_static = true;
    tool_analyze = (fun info _ -> Tool.per_loop info (classify info));
  }
