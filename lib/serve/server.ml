(* Unix-domain-socket transport for the serve engine.

   One accept loop, one connection at a time, one request line at a time:
   the engine owns process-global state (telemetry counters, faultpoint
   plans, the verdict cache), so serialization is what makes per-request
   telemetry deltas and fault scoping meaningful.  Clients queue in the
   listen backlog; analysis latency dwarfs connection turnaround.

   Every request is wrapped in a Telemetry span and appended to the
   JSONL access log (one object per request: timestamp, id, op, program,
   status, loop/hit/miss counts, elapsed time), so a daemon's history
   can be replayed or mined with the same tooling as a trace file. *)

type config = {
  sv_socket : string;
  sv_cache_dir : string option;
  sv_cache_capacity : int option;
  sv_sessions : int;
  sv_jobs : int option;
  sv_access_log : string option;
  sv_max_requests : int option;  (* stop after N requests: tests, smoke runs *)
}

let default_config socket =
  {
    sv_socket = socket;
    sv_cache_dir = None;
    sv_cache_capacity = None;
    sv_sessions = 8;
    sv_jobs = None;
    sv_access_log = None;
    sv_max_requests = None;
  }

(* A leftover socket file from a crashed daemon would make bind fail.
   Only reclaim the path if nothing answers on it — a live daemon's
   socket is left alone and surfaces as an address-in-use error. *)
let reclaim_stale_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if not live then try Sys.remove path with Sys_error _ -> ()
  end

let program_name = function
  | Some (Protocol.Named n) -> n
  | Some (Protocol.Inline { file; _ }) -> file ^ " (inline)"
  | None -> ""

let log_request oc (rq : Protocol.request) (rp : Protocol.response) =
  match oc with
  | None -> ()
  | Some oc ->
      let entry =
        Json.Obj
          [
            ("ts_ns", Json.Int (Dca_support.Telemetry.now_ns ()));
            ("id", Json.Int rq.Protocol.rq_id);
            ("op", Json.Str (Protocol.op_to_string rq.Protocol.rq_op));
            ("program", Json.Str (program_name rq.Protocol.rq_program));
            ("status", Json.Str (if rp.Protocol.rp_ok then "ok" else "error"));
            ("loops", Json.Int (List.length rp.Protocol.rp_loops));
            ("hits", Json.Int rp.Protocol.rp_hits);
            ("misses", Json.Int rp.Protocol.rp_misses);
            ("elapsed_ns", Json.Int rp.Protocol.rp_elapsed_ns);
          ]
      in
      output_string oc (Json.to_string entry);
      output_char oc '\n';
      flush oc

type state = { engine : Engine.t; mutable served : int; mutable stop : bool }

let handle_line st access rq_line =
  let rq, rp =
    match Protocol.parse_request rq_line with
    | Error msg ->
        (Protocol.default_request, Protocol.error_response ~id:0 ("bad request: " ^ msg))
    | Ok rq ->
        let rp =
          Dca_support.Telemetry.span ~cat:"serve"
            ("serve." ^ Protocol.op_to_string rq.Protocol.rq_op)
            (fun () -> Engine.handle st.engine rq)
        in
        if rq.Protocol.rq_op = Protocol.Shutdown then st.stop <- true;
        (rq, rp)
  in
  st.served <- st.served + 1;
  log_request access rq rp;
  rp

let serve_connection st access ~budget_left fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  try
    while (not st.stop) && budget_left () do
      let line = input_line ic in
      if String.trim line <> "" then begin
        let rp = handle_line st access line in
        output_string oc (Protocol.response_line rp);
        output_char oc '\n';
        flush oc
      end
    done
  with
  | End_of_file -> ()
  | Sys_error _ -> ()

let run cfg =
  reclaim_stale_socket cfg.sv_socket;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind sock (Unix.ADDR_UNIX cfg.sv_socket) with
  | () -> ()
  | exception e ->
      Unix.close sock;
      raise e);
  Unix.listen sock 16;
  let engine =
    Engine.create ?cache_dir:cfg.sv_cache_dir ?cache_capacity:cfg.sv_cache_capacity
      ~sessions:cfg.sv_sessions ?jobs:cfg.sv_jobs ()
  in
  let access =
    Option.map (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path) cfg.sv_access_log
  in
  let st = { engine; served = 0; stop = false } in
  let budget_left () =
    match cfg.sv_max_requests with None -> true | Some n -> st.served < n
  in
  Fun.protect
    ~finally:(fun () ->
      Engine.close engine;
      Option.iter close_out_noerr access;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove cfg.sv_socket with Sys_error _ -> ())
    (fun () ->
      while (not st.stop) && budget_left () do
        match Unix.accept sock with
        | fd, _ ->
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> serve_connection st access ~budget_left fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      st.served)
