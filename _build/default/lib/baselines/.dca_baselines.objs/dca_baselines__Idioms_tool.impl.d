lib/baselines/idioms_tool.ml: Affine Dca_analysis List Loops Memred Printf Proginfo Purity Scalars Static_common Tool
