(** The unified entry point of the DCA pipeline.

    A session owns one program (from a source string, a file, or a
    built-in benchmark) together with the analysis configuration and a
    worker-pool width, and exposes every pipeline stage as a {e memoized}
    accessor:

    {v
      source ──▶ ir ──▶ proginfo ──┬──▶ profile ──┐
                                   └──▶ dca_results ──▶ plan
    v}

    Each stage is computed on first access and cached; repeated access
    returns the {e physically equal} value, so downstream consumers (the
    CLI commands, the advisor, the exporters) can be written independently
    without re-running earlier stages.  This replaces the
    compile → proginfo → profile → spec boilerplate previously duplicated
    across every front end.

    With [~jobs] > 1 the dynamic stage runs on a {!Dca_support.Pool}
    shared by the session: per-loop commutativity tests and per-schedule
    permuted replays fan out across OCaml domains with a deterministic
    merge — verdicts and reports are bit-identical to [~jobs:1].  The
    pool is created lazily on the first stage that needs it and released
    by {!close} (or automatically by {!with_session}). *)

type origin =
  | Source of { file : string; source : string; input : int list }
      (** a MiniC source string; [file] is used in diagnostics, [input]
          feeds the program's [reads()] stream *)
  | Benchmark of Dca_progs.Benchmark.t  (** a built-in benchmark program *)

type t

val create :
  ?jobs:int ->
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?deadline_ms:int ->
  ?heap_words:int ->
  ?hierarchical:bool ->
  origin ->
  t
(** [jobs] defaults to {!Dca_support.Pool.default_jobs} (the [DCA_JOBS]
    environment variable, else the recommended domain count).  [spec]
    defaults to the origin's input stream with a 200-million-instruction
    fuel bound.  [hierarchical] (default [false]) makes {!dca_results}
    skip loops subsumed by a commutative ancestor.

    Creation also arms telemetry from the environment
    ({!Dca_support.Telemetry.init_from_env}: [DCA_TRACE] names a trace
    file and enables spans, [DCA_STATS=1] enables counters and the exit
    summary) and fault injection ([DCA_FAULTS], see
    {!Dca_support.Faultpoint}) unless the embedder configured either
    explicitly first.

    [deadline_ms] / [heap_words] apply per-invocation resource guards to
    the dynamic stage (wall-clock budget, major-heap growth budget);
    they are folded into the derived run spec and ignored when an
    explicit [spec] is given. *)

val load :
  ?jobs:int ->
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?deadline_ms:int ->
  ?heap_words:int ->
  ?hierarchical:bool ->
  string ->
  (t, string) result
(** Resolve a program argument the way the CLI does: a built-in benchmark
    name from {!Dca_progs.Registry}, else a path to a [.mc] file. *)

(** {1 Identity} *)

val name : t -> string
val file : t -> string
val source : t -> string
val input : t -> int list
val jobs : t -> int

(** {1 Memoized pipeline stages} *)

val ir : t -> Dca_ir.Ir.program
(** Parse, type-check and lower the source. *)

val proginfo : t -> Dca_analysis.Proginfo.t
(** All static analyses over {!ir}. *)

val profile : t -> Dca_profiling.Depprof.profile
(** One instrumented run: dependences, costs, coverage. *)

val dca_results : t -> Driver.loop_result list
(** The DCA verdict for every loop, in program order.  Runs on the
    session pool when [jobs > 1]. *)

val plan :
  ?machine:Dca_parallel.Machine.t ->
  ?strategy:Dca_parallel.Planner.strategy ->
  t ->
  Dca_parallel.Plan.t
(** Parallelization plan over the DCA-commutative loops.  The
    default-machine, default-strategy plan is memoized; passing an
    explicit [machine] or [strategy] computes a fresh plan. *)

(** {1 Derived products} *)

val advise : t -> Advisor.advice list
val report : t -> string
(** {!Report.to_string} of {!dca_results}. *)

val telemetry : t -> (string * int) list
(** Snapshot of the process-wide {!Dca_support.Telemetry} counters
    (name/value, sorted by name; empty while counting is disabled).
    Counters are process-global, not per-session: embedders running
    several sessions see their aggregate.  The work-kind counters
    ([dca.*]) are deterministic — bit-identical across [jobs] settings
    and checkpoint modes; the diagnostic ones ([store.*],
    [interp.instructions]) are not. *)

(** {1 Lifecycle} *)

val close : t -> unit
(** Release the worker pool (if one was started).  Idempotent; the
    memoized stages stay readable after [close], but further stage
    computations run sequentially. *)

val with_session :
  ?jobs:int ->
  ?config:Commutativity.config ->
  ?spec:Commutativity.run_spec ->
  ?deadline_ms:int ->
  ?heap_words:int ->
  ?hierarchical:bool ->
  origin ->
  (t -> 'a) ->
  'a
(** [create], run, then {!close} (also on exception). *)
