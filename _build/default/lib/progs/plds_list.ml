(** PLDS ports, part 1: linked-list traversal loops from Table II whose
    [p = p->next] updates defeat dependence analysis.

    - [mcf_refresh]: 429.mcf's [refresh_potential]-style tree sweep.  Each
      node's potential comes from its predecessor; the workload (like
      SPEC's) never exercises the sibling-reading path, so the loop is
      dynamically commutative — the paper's one "not statically
      commutative" entry.
    - [twolf_dbox]: 300.twolf's [new_dbox_a]-style doubly-nested list
      walk accumulating a cost delta.
    - [ks_swap]: PtrDist ks's [FindMaxGpAndSwap]-style max-gain search
      (argmax over a list — a conditional update no reduction recognizer
      accepts).
    - [otter_light]: otter's lightest-child search (argmin). *)

let mcf_refresh =
  Benchmark.default ~name:"429.mcf" ~suite:Benchmark.Plds
    ~description:"refresh_potential-style tree sweep with an unexercised sibling dependence"
    ~source:
      {|
struct node {
  float potential;
  float cost;
  int orientation;          // 1 = up (read parent), 0 = down (read sibling)
  struct node *pred;
  struct node *sibling;
  struct node *next;        // traversal order
}

struct node *root;
struct node *first;
float checksum;

void build(int nnodes) {
  root = new struct node;
  root->potential = 100.0;
  root->cost = 0.0;
  root->orientation = 1;
  root->pred = null;
  root->sibling = null;
  root->next = null;
  first = null;
  int i;
  for (i = 0; i < nnodes; i = i + 1) {
    struct node *n = new struct node;
    n->potential = 0.0;
    n->cost = hrand(i) * 10.0;
    n->orientation = 1;      // the workload never makes this 0
    n->pred = root;          // flat tree: every node hangs off the root
    n->sibling = null;
    n->next = first;
    first = n;
  }
}

void refresh_potential() {
  struct node *n = first;
  while (n) {
    if (n->orientation == 1) {
      n->potential = n->pred->potential + n->cost;
    } else {
      // sibling path: a genuine cross-iteration dependence, never taken
      n->potential = n->sibling->potential - n->cost;
    }
    n = n->next;
  }
}

void main() {
  build(160);
  // several pricing sweeps, as mcf's simplex loop does
  int sweep;
  for (sweep = 0; sweep < 5; sweep = sweep + 1) { refresh_potential(); }
  checksum = 0.0;
  struct node *n = first;
  while (n) {
    checksum = checksum + n->potential;
    n = n->next;
  }
  print(checksum);
  printi(1);
}
|}

let twolf_dbox =
  Benchmark.default ~name:"300.twolf" ~suite:Benchmark.Plds
    ~description:"new_dbox_a-style doubly-nested linked-list cost accumulation"
    ~source:
      {|
struct term {
  float x;
  float y;
  struct term *next;
}
struct net {
  struct term *terms;
  float weight;
  struct net *next;
}

struct net *netlist;
float delta_cost;

void build(int nnets, int nterms) {
  netlist = null;
  int i;
  for (i = 0; i < nnets; i = i + 1) {
    struct net *nn = new struct net;
    nn->weight = 0.5 + hrand(i);
    nn->terms = null;
    int j;
    for (j = 0; j < nterms; j = j + 1) {
      struct term *t = new struct term;
      t->x = hrand(i * 97 + j) * 50.0;
      t->y = hrand(i * 131 + j) * 50.0;
      t->next = nn->terms;
      nn->terms = t;
    }
    nn->next = netlist;
    netlist = nn;
  }
}

// the hot new_dbox_a loop: bounding-box cost over every net's terminals
void new_dbox_a() {
  struct net *nn = netlist;
  while (nn) {
    float minx = 1000000.0;
    float maxx = -1000000.0;
    float miny = 1000000.0;
    float maxy = -1000000.0;
    struct term *t = nn->terms;
    while (t) {
      minx = fmin(minx, t->x);
      maxx = fmax(maxx, t->x);
      miny = fmin(miny, t->y);
      maxy = fmax(maxy, t->y);
      t = t->next;
    }
    delta_cost = delta_cost + nn->weight * ((maxx - minx) + (maxy - miny));
    nn = nn->next;
  }
}

void main() {
  build(40, 8);
  delta_cost = 0.0;
  int pass;
  for (pass = 0; pass < 3; pass = pass + 1) { new_dbox_a(); }
  print(delta_cost);
  printi(1);
}
|}

let ks_swap =
  Benchmark.default ~name:"ks" ~suite:Benchmark.Plds
    ~description:"FindMaxGpAndSwap-style max-gain pair search over linked module lists"
    ~source:
      {|
struct module {
  int id;
  float gain;
  struct module *next;
}

struct module *group_a;
struct module *group_b;
int best_a;
int best_b;
float best_gain;

struct module *build(int n, int salt) {
  struct module *head = null;
  int i;
  for (i = 0; i < n; i = i + 1) {
    struct module *m = new struct module;
    m->id = salt * 1000 + i;
    // distinct gains so the argmax is unique
    m->gain = hrand(salt * 7919 + i) + itof(i) * 0.001;
    m->next = head;
    head = m;
  }
  return head;
}

// hot loop: examine all cross pairs for the best swap gain, then swap
void find_max_gp_and_swap() {
  best_gain = -1000000.0;
  struct module *best_ma = null;
  struct module *best_mb = null;
  struct module *a = group_a;
  while (a) {
    struct module *b = group_b;
    while (b) {
      float g = a->gain + b->gain - 0.01 * itof((a->id + b->id) % 13);
      if (g > best_gain) {
        best_gain = g;
        best_ma = a;
        best_mb = b;
      }
      b = b->next;
    }
    a = a->next;
  }
  if (best_ma) {
    best_a = best_ma->id;
    best_b = best_mb->id;
    // swap the gains so the next pass finds a different pair
    float tmp = best_ma->gain;
    best_ma->gain = best_mb->gain * 0.5;
    best_mb->gain = tmp * 0.5;
  }
}

void main() {
  group_a = build(48, 1);
  group_b = build(48, 2);
  int pass;
  for (pass = 0; pass < 3; pass = pass + 1) { find_max_gp_and_swap(); }
  print(best_gain);
  printi(best_a);
  printi(best_b);
  printi(1);
}
|}

let otter_light =
  Benchmark.default ~name:"otter" ~suite:Benchmark.Plds
    ~description:"find_lightest_geo_child-style argmin over a child list"
    ~source:
      {|
struct child {
  float weight;
  int id;
  struct child *next;
}
struct parent {
  struct child *children;
  struct parent *next;
}

struct parent *parents;
int lightest_sum;

void build(int np, int nc) {
  parents = null;
  int i;
  for (i = 0; i < np; i = i + 1) {
    struct parent *p = new struct parent;
    p->children = null;
    int j;
    for (j = 0; j < nc; j = j + 1) {
      struct child *c = new struct child;
      c->weight = hrand(i * 211 + j) + itof(j) * 0.0001;
      c->id = j;
      c->next = p->children;
      p->children = c;
    }
    p->next = parents;
    parents = p;
  }
}

void find_lightest_geo_child() {
  struct parent *p = parents;
  while (p) {
    float lightest = 1000000.0;
    int lightest_id = -1;
    struct child *c = p->children;
    while (c) {
      if (c->weight < lightest) {
        lightest = c->weight;
        lightest_id = c->id;
      }
      c = c->next;
    }
    lightest_sum = lightest_sum + lightest_id;
    p = p->next;
  }
}

void main() {
  build(60, 12);
  lightest_sum = 0;
  int pass;
  for (pass = 0; pass < 4; pass = pass + 1) { find_lightest_geo_child(); }
  printi(lightest_sum);
  printi(1);
}
|}

let benchmarks = [ mcf_refresh; twolf_dbox; ks_swap; otter_light ]
