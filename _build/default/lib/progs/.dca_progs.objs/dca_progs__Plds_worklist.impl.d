lib/progs/plds_worklist.ml: Benchmark
