lib/analysis/purity.ml: Array Ast Dca_frontend Dca_ir Hashtbl Ir List
