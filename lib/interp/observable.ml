type cell =
  | CInt of int
  | CFloat of float
  | CPtr of int * int  (** canonical block id, offset *)
  | CNull
  | CUndef

(* Captures are flat arrays (not lists): the dynamic stage builds and
   compares one digest per schedule replay, so construction and the
   equality walk are hot.  [obs_hash] summarizes every exactly-compared
   ingredient — cell tags, int/pointer payloads, scalar count and
   per-block lengths, but NOT float payloads (those compare with a
   relative tolerance) — so digests of genuinely different states are
   told apart by one integer comparison before any cell walk. *)
type t = { obs_scalars : cell array; obs_blocks : cell array array; obs_hash : int }

let hash_mix h k = (h * 0x01000193) lxor k

let hash_cell h = function
  | CInt n -> hash_mix (hash_mix h 1) n
  | CFloat _ -> hash_mix h 2  (* eps-tolerant payload: tag only *)
  | CPtr (b, o) -> hash_mix (hash_mix (hash_mix h 3) b) o
  | CNull -> hash_mix h 4
  | CUndef -> hash_mix h 5

let hash_cells h cells =
  let h = ref (hash_mix h (Array.length cells)) in
  for i = 0 to Array.length cells - 1 do
    h := hash_cell !h cells.(i)
  done;
  !h

(* Canonicalize: BFS over blocks from the roots, assigning canonical ids in
   first-visit order.  The visit order is deterministic because scalars and
   roots come in fixed order and cells are scanned left to right. *)
let capture st ~scalars ~roots =
  let canon = Hashtbl.create 64 in
  let queue = Queue.create () in
  let next_id = ref 0 in
  let canon_of_block b =
    match Hashtbl.find_opt canon b with
    | Some id -> id
    | None ->
        let id = !next_id in
        incr next_id;
        Hashtbl.replace canon b id;
        Queue.add b queue;
        id
  in
  let cell_of_value = function
    | Value.VInt n -> CInt n
    | Value.VFloat f -> CFloat f
    | Value.VNull -> CNull
    | Value.VUndef -> CUndef
    | Value.VPtr (b, o) ->
        if Store.block_size st b = None then (* dangling after a restore *) CUndef
        else CPtr (canon_of_block b, o)
  in
  let obs_scalars = Array.of_list (List.map cell_of_value (scalars @ roots)) in
  let blocks_rev = ref [] in
  let n_blocks = ref 0 in
  let rec drain () =
    if not (Queue.is_empty queue) then begin
      let b = Queue.take queue in
      let cells =
        match Store.block_cells st b with
        | Some live -> Array.map cell_of_value live
        | None -> [||]
      in
      blocks_rev := cells :: !blocks_rev;
      incr n_blocks;
      drain ()
    end
  in
  drain ();
  let obs_blocks = Array.make !n_blocks [||] in
  List.iteri (fun k cells -> obs_blocks.(!n_blocks - 1 - k) <- cells) !blocks_rev;
  let h = hash_cells (hash_mix 0x811c9dc5 (Array.length obs_scalars)) obs_scalars in
  let h = Array.fold_left hash_cells (hash_mix h !n_blocks) obs_blocks in
  { obs_scalars; obs_blocks; obs_hash = h }

let float_close eps a b =
  a = b
  || Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let cell_equal eps a b =
  match (a, b) with
  | CFloat x, CFloat y -> float_close eps x y
  | CInt x, CInt y -> x = y
  | CPtr (b1, o1), CPtr (b2, o2) -> b1 = b2 && o1 = o2
  | CNull, CNull | CUndef, CUndef -> true
  | _ -> false

(* Cell-wise walk with early exit on the first mismatch. *)
let cells_equal eps c1 c2 =
  Array.length c1 = Array.length c2
  &&
  let rec go i = i >= Array.length c1 || (cell_equal eps c1.(i) c2.(i) && go (i + 1)) in
  go 0

(* The prefilter is a sound inequality test: captures that compare equal
   agree on every non-float ingredient, hence on the hash — so differing
   hashes (or counts, or lengths) decide "not equal" without walking a
   single cell.  Equal hashes still need the eps-aware walk. *)
let equal ?(eps = 1e-9) t1 t2 =
  t1.obs_hash = t2.obs_hash
  && Array.length t1.obs_scalars = Array.length t2.obs_scalars
  && Array.length t1.obs_blocks = Array.length t2.obs_blocks
  && cells_equal eps t1.obs_scalars t2.obs_scalars
  &&
  let rec go i =
    i >= Array.length t1.obs_blocks
    || (cells_equal eps t1.obs_blocks.(i) t2.obs_blocks.(i) && go (i + 1))
  in
  go 0

(* In-place comparison: walk the live store in the exact traversal order
   {!capture} uses and compare cell-by-cell against a previously captured
   digest, without materializing a second capture.  This is the replay hot
   path — a schedule replay only ever asks "does the state I left behind
   match the golden digest?", and building a full capture for that answer
   allocates (and promotes, since the digest is live across the walk) tens
   of KW per replay.  The walk allocates only the canonical-renaming table.

   Equivalence with [equal (capture st ...) golden]: both traverse scalars
   then queued blocks in first-visit order, so when every compared cell
   agrees the canonical numbering of the live heap coincides with the
   golden's and the two are isomorphic; on the first disagreement —
   payload, block count, or block length — the result is [false] exactly
   where the digest comparison would have found differing cells. *)
let matches ?(eps = 1e-9) golden st ~scalars ~roots =
  let canon = Hashtbl.create 64 in
  let queue = Queue.create () in
  let next_id = ref 0 in
  let canon_of_block b =
    match Hashtbl.find_opt canon b with
    | Some id -> id
    | None ->
        let id = !next_id in
        incr next_id;
        Hashtbl.replace canon b id;
        Queue.add b queue;
        id
  in
  let value_matches cell v =
    match (cell, v) with
    | CInt n, Value.VInt m -> n = m
    | CFloat x, Value.VFloat y -> float_close eps x y
    | CNull, Value.VNull -> true
    | CUndef, Value.VUndef -> true
    | CUndef, Value.VPtr (b, _) -> Store.block_size st b = None  (* dangling *)
    | CPtr (cb, co), Value.VPtr (b, o) ->
        co = o && Store.block_size st b <> None && canon_of_block b = cb
    | _ -> false
  in
  let rec scalars_match i = function
    | [] -> i = Array.length golden.obs_scalars
    | v :: rest ->
        i < Array.length golden.obs_scalars
        && value_matches golden.obs_scalars.(i) v
        && scalars_match (i + 1) rest
  in
  let scalars_ok = scalars_match 0 (scalars @ roots) in
  let block_matches cells id =
    id < Array.length golden.obs_blocks
    &&
    let gold = golden.obs_blocks.(id) in
    Array.length gold = Array.length cells
    &&
    let rec go i = i >= Array.length cells || (value_matches gold.(i) cells.(i) && go (i + 1)) in
    go 0
  in
  let rec drain id =
    if Queue.is_empty queue then id = Array.length golden.obs_blocks
    else
      let b = Queue.take queue in
      (match Store.block_cells st b with Some live -> block_matches live id | None -> false)
      && drain (id + 1)
  in
  scalars_ok && drain 0

let size t =
  Array.length t.obs_scalars + Array.fold_left (fun acc c -> acc + Array.length c) 0 t.obs_blocks

let cell_to_string = function
  | CInt n -> string_of_int n
  | CFloat f -> Printf.sprintf "%.12g" f
  | CPtr (b, o) -> Printf.sprintf "&%d.%d" b o
  | CNull -> "null"
  | CUndef -> "undef"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "scalars: ";
  Buffer.add_string buf (String.concat ", " (List.map cell_to_string (Array.to_list t.obs_scalars)));
  Array.iteri
    (fun i cells ->
      Buffer.add_string buf (Printf.sprintf "\nblock %d: " i);
      Buffer.add_string buf (String.concat ", " (Array.to_list (Array.map cell_to_string cells))))
    t.obs_blocks;
  Buffer.contents buf

let outputs_equal ?(eps = 1e-9) a b =
  let line_equal x y =
    x = y
    ||
    match (float_of_string_opt x, float_of_string_opt y) with
    | Some fx, Some fy -> float_close eps fx fy
    | _ -> false
  in
  List.length a = List.length b && List.for_all2 line_equal a b
