(** Dominator trees via the Cooper–Harvey–Kennedy algorithm.

    The module is graph-generic so the same code computes dominance on the
    CFG and post-dominance on the reversed CFG (with a virtual exit that
    fans in from every [Ret] block). *)

type t

val compute : nnodes:int -> entry:int -> preds:(int -> int list) -> rpo:int list -> t
(** Generic entry point.  [rpo] must be a reverse postorder of the
    reachable nodes starting with [entry]; [preds] gives predecessor lists
    restricted to reachable nodes. *)

val of_cfg : Dca_ir.Cfg.t -> t
(** Dominance on a function's CFG. *)

val post_of_cfg : Dca_ir.Cfg.t -> t * int
(** Post-dominance: returns the tree and the id of the virtual exit node
    (= number of blocks; it post-dominates everything). *)

val idom : t -> int -> int option
(** Immediate dominator ([None] for the entry and unreachable nodes). *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)

val children : t -> int -> int list
(** Dominator-tree children. *)
