examples/npb_pipeline.ml: Array Dca_baselines Dca_core Dca_experiments Dca_parallel Dca_progs Evaluation Figures List Paper_data Printf Sys
