external now_ns : unit -> int = "dca_monotonic_now_ns" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* Counter descriptors                                                 *)
(* ------------------------------------------------------------------ *)

(* A counter is a process-wide *descriptor* — name, kind, merge rule and
   a dense index — while its cells live in contexts.  Descriptors are
   registered once (module-initialization [let]s) and shared by every
   context, so two contexts always agree on what a counter means and a
   fold of one context into another is index-aligned. *)

type kind = Work | Diag
type merge = Sum | Max

type counter = { c_name : string; c_kind : kind; c_merge : merge; c_index : int }

let registry : counter list ref = ref []  (* newest first *)
let registry_n = ref 0
let registry_mutex = Mutex.create ()

let counter ?(kind = Work) ?(merge = Sum) name =
  Mutex.protect registry_mutex (fun () ->
      match List.find_opt (fun c -> c.c_name = name) !registry with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_kind = kind; c_merge = merge; c_index = !registry_n } in
          registry := c :: !registry;
          incr registry_n;
          c)

let registered () = Mutex.protect registry_mutex (fun () -> !registry)

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)
(* ------------------------------------------------------------------ *)

type event = {
  e_ph : char;
  e_name : string;
  e_cat : string;
  e_ts : int;
  e_tid : int;
  e_args : (string * string) list;
}

(* A context owns what used to be process-global: the collection flags,
   one cell per registered counter, and per-domain event buffers.  The
   flags are atomics because they are read from pool worker domains; the
   disabled fast path is still one load and one branch per flag, with no
   allocation.  Buffers are keyed by domain id and only ever appended to
   by that domain; sinks read them after the workers have gone quiet. *)
type ctx = {
  ctx_tracing : bool Atomic.t;
  ctx_counting : bool Atomic.t;
  ctx_mutex : Mutex.t;  (* guards cell-array growth and buffer registration *)
  mutable ctx_cells : int Atomic.t array;
  mutable ctx_buffers : (int * event list ref) list;  (* newest first *)
}

let make_ctx ~tracing ~counting =
  {
    ctx_tracing = Atomic.make tracing;
    ctx_counting = Atomic.make counting;
    ctx_mutex = Mutex.create ();
    ctx_cells = [||];
    ctx_buffers = [];
  }

let global_ctx = make_ctx ~tracing:false ~counting:false

(* The ambient context of the calling domain.  Defaults to the global
   context everywhere, so code that never mentions contexts behaves
   exactly as before the refactor. *)
let current_key = Domain.DLS.new_key (fun () -> global_ctx)
let current () = Domain.DLS.get current_key

let with_ctx c f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key c;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

(* Find a context's cell for a descriptor, growing the cell array on the
   slow path.  Growth copies the *same* [Atomic.t] values into the larger
   array, so increments racing with growth land in cells the new array
   still reaches — no update is lost. *)
let cell ctx c =
  let a = ctx.ctx_cells in
  if c.c_index < Array.length a then Array.unsafe_get a c.c_index
  else
    Mutex.protect ctx.ctx_mutex (fun () ->
        let a = ctx.ctx_cells in
        if c.c_index < Array.length a then a.(c.c_index)
        else begin
          let n = max (c.c_index + 1) !registry_n in
          let a' =
            Array.init n (fun i -> if i < Array.length a then a.(i) else Atomic.make 0)
          in
          ctx.ctx_cells <- a';
          a'.(c.c_index)
        end)

(* Read-only probe: never grows the array (reads allocate nothing). *)
let peek ctx c =
  let a = ctx.ctx_cells in
  if c.c_index < Array.length a then Atomic.get (Array.unsafe_get a c.c_index) else 0

let max_bump cell n =
  let rec bump () =
    let cur = Atomic.get cell in
    if n > cur && not (Atomic.compare_and_set cell cur n) then bump ()
  in
  bump ()

let ctx_counters ?kind ctx =
  registered ()
  |> List.filter (fun c -> match kind with None -> true | Some k -> c.c_kind = k)
  |> List.map (fun c -> (c.c_name, peek ctx c))
  |> List.sort compare

let ctx_reset ctx =
  Mutex.protect ctx.ctx_mutex (fun () ->
      Array.iter (fun cell -> Atomic.set cell 0) ctx.ctx_cells;
      List.iter (fun (_, b) -> b := []) ctx.ctx_buffers)

(* Fold [src]'s counters into [into]: [Sum] counters add, [Max] counters
   keep the larger value.  Unconditional — this is aggregation of already
   collected data, not instrumentation, so [into]'s counting flag is not
   consulted.  Events are not folded; they stay with the context that
   recorded them. *)
let ctx_merge_into ~into src =
  if into != src then
    List.iter
      (fun c ->
        let v = peek src c in
        if v <> 0 then
          match c.c_merge with
          | Sum -> ignore (Atomic.fetch_and_add (cell into c) v)
          | Max -> max_bump (cell into c) v)
      (registered ())

(* ------------------------------------------------------------------ *)
(* Ambient API (what pre-context call sites keep using)                *)
(* ------------------------------------------------------------------ *)

let tracing () = Atomic.get (current ()).ctx_tracing
let counting () = Atomic.get (current ()).ctx_counting
let set_tracing b = Atomic.set (current ()).ctx_tracing b
let set_counting b = Atomic.set (current ()).ctx_counting b

type config = { cfg_trace : string option; cfg_jsonl : string option; cfg_stats : bool }

let current_config = ref { cfg_trace = None; cfg_jsonl = None; cfg_stats = false }
let explicitly_configured = ref false
let env_inited = ref false

(* Sinks and their file paths are process-level concerns; [configure]
   installs them and derives the collection flags of the *global*
   context, which is the ambient context of every front end. *)
let apply_config cfg =
  current_config := cfg;
  let tracing = cfg.cfg_trace <> None || cfg.cfg_jsonl <> None in
  Atomic.set global_ctx.ctx_tracing tracing;
  Atomic.set global_ctx.ctx_counting (tracing || cfg.cfg_stats)

let configure cfg =
  explicitly_configured := true;
  apply_config cfg

let config () = !current_config

let init_from_env () =
  if not (!explicitly_configured || !env_inited) then begin
    env_inited := true;
    let trace = Sys.getenv_opt "DCA_TRACE" in
    let stats =
      match Sys.getenv_opt "DCA_STATS" with Some "" | Some "0" | None -> false | Some _ -> true
    in
    let cfg =
      match trace with
      | Some f when f <> "" ->
          if Filename.check_suffix f ".jsonl" then
            { cfg_trace = None; cfg_jsonl = Some f; cfg_stats = stats }
          else { cfg_trace = Some f; cfg_jsonl = None; cfg_stats = stats }
      | _ -> { cfg_trace = None; cfg_jsonl = None; cfg_stats = stats }
    in
    apply_config cfg
  end

let add c n = if counting () then ignore (Atomic.fetch_and_add (cell (current ()) c) n)
let incr c = add c 1
let add_max c n = if counting () then max_bump (cell (current ()) c) n
let value c = peek (current ()) c
let counters ?kind () = ctx_counters ?kind (current ())
let reset () = ctx_reset (current ())

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

(* One buffer per (context, domain), found through a one-slot per-domain
   cache: the common case — a domain recording many events into one
   context — pays a physical-equality check, not a mutex. *)
let buffer_cache : (ctx * event list ref) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let buffer_for ctx =
  let slot = Domain.DLS.get buffer_cache in
  match !slot with
  | Some (c, b) when c == ctx -> b
  | _ ->
      let tid = (Domain.self () :> int) in
      let b =
        Mutex.protect ctx.ctx_mutex (fun () ->
            match List.assoc_opt tid ctx.ctx_buffers with
            | Some b -> b
            | None ->
                let b = ref [] in
                ctx.ctx_buffers <- (tid, b) :: ctx.ctx_buffers;
                b)
      in
      slot := Some (ctx, b);
      b

let record ph ?(args = []) ~cat name =
  let ev =
    {
      e_ph = ph;
      e_name = name;
      e_cat = cat;
      e_ts = now_ns ();
      e_tid = (Domain.self () :> int);
      e_args = args;
    }
  in
  let b = buffer_for (current ()) in
  b := ev :: !b

let begin_span ?(cat = "") name = if tracing () then record 'B' ~cat name

let end_span ?args name = if tracing () then record 'E' ?args ~cat:"" name

let span ?cat name f =
  if tracing () then begin
    begin_span ?cat name;
    Fun.protect ~finally:(fun () -> end_span name) f
  end
  else f ()

let instant ?args name = if tracing () then record 'i' ?args ~cat:"" name

let ctx_events ctx =
  Mutex.protect ctx.ctx_mutex (fun () -> List.rev ctx.ctx_buffers)
  |> List.concat_map (fun (_, b) -> List.rev !b)

let events () = ctx_events (current ())

(* ------------------------------------------------------------------ *)
(* The context handle                                                  *)
(* ------------------------------------------------------------------ *)

module Ctx = struct
  type t = ctx

  let global = global_ctx
  let create ?(tracing = false) ?(counting = false) () = make_ctx ~tracing ~counting
  let tracing c = Atomic.get c.ctx_tracing
  let counting c = Atomic.get c.ctx_counting
  let set_tracing c b = Atomic.set c.ctx_tracing b
  let set_counting c b = Atomic.set c.ctx_counting b
  let value c cnt = peek c cnt
  let counters = ctx_counters
  let events = ctx_events
  let reset = ctx_reset
  let merge_into = ctx_merge_into
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let stats_table () =
  let render title kind buf =
    let nonzero = List.filter (fun (_, v) -> v <> 0) (counters ~kind ()) in
    if nonzero <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%s\n" title);
      List.iter (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-36s %14d\n" n v)) nonzero
    end
  in
  let buf = Buffer.create 512 in
  render "-- work counters (deterministic across jobs and checkpoint modes) --" Work buf;
  render "-- diagnostic counters (machine- and schedule-dependent) --" Diag buf;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no counters recorded)\n";
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  if args = [] then ""
  else
    Printf.sprintf ",\"args\":{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) args))

let with_out file f =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let write_chrome_trace file =
  let evs = events () in
  let t0 = List.fold_left (fun acc e -> min acc e.e_ts) max_int evs in
  with_out file (fun oc ->
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i e ->
          if i > 0 then output_string oc ",";
          (* microsecond timestamps, rebased to the first event *)
          Printf.fprintf oc "\n{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\"%s%s}"
            e.e_ph e.e_tid
            (float_of_int (e.e_ts - t0) /. 1000.0)
            (json_escape e.e_name)
            (if e.e_cat = "" then "" else Printf.sprintf ",\"cat\":\"%s\"" (json_escape e.e_cat))
            (args_json e.e_args))
        evs;
      output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n")

let write_jsonl file =
  with_out file (fun oc ->
      List.iter
        (fun e ->
          Printf.fprintf oc "{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"name\":\"%s\"%s%s}\n"
            e.e_ph e.e_tid e.e_ts (json_escape e.e_name)
            (if e.e_cat = "" then "" else Printf.sprintf ",\"cat\":\"%s\"" (json_escape e.e_cat))
            (args_json e.e_args))
        (events ()))

let flush () =
  let cfg = !current_config in
  (match cfg.cfg_trace with Some f -> write_chrome_trace f | None -> ());
  (match cfg.cfg_jsonl with Some f -> write_jsonl f | None -> ());
  if cfg.cfg_stats then prerr_string (stats_table ())
