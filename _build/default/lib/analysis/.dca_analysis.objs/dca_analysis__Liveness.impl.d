lib/analysis/liveness.ml: Array Cfg Dataflow Dca_ir Dca_support Hashtbl Intset Ir List Loops Option
