lib/interp/observable.mli: Store Value
