examples/npb_pipeline.mli:
