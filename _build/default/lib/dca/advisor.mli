(** The parallelism advisor the paper envisions DCA inside (§I: "an
    interactive or semi-automatic parallelism advisor, where the user has
    the final word").

    For every loop the advisor combines the static stage, the dynamic
    verdict, the dependence profile and the machine-model profitability
    into one advice record: parallelize (with the OpenMP clauses to use and
    the expected speedup of the loop), don't (with the concrete reason —
    the blocking dependence, the I/O statement, the failed schedule), or
    review (commutative under the tested inputs but needing the user's
    approval, e.g. after whole-program escalation — the paper's safety
    story, §IV-D). *)

type recommendation =
  | Parallelize  (** commutative, profitable; apply the suggested pragma *)
  | Parallelize_with_review of string
      (** commutative, but the evidence warrants a look: verification
          escalated, a worklist was promoted, or a real-but-unexercised
          dependence may exist (mcf-style) *)
  | Not_profitable of string  (** commutative but the machine model says leave it serial *)
  | Keep_sequential of string  (** non-commutative or excluded; the reason *)

type advice = {
  ad_loop : Dca_analysis.Loops.loop;
  ad_label : string;
  ad_recommendation : recommendation;
  ad_pragma : string option;  (** OpenMP-style pragma when parallelizing *)
  ad_loop_speedup : float option;  (** seq/par of the loop's own extent *)
  ad_coverage : float;  (** fraction of program time in this loop's extent *)
  ad_notes : string list;  (** evidence trail for the user *)
}

val advise :
  ?machine:Dca_parallel.Machine.t ->
  Dca_analysis.Proginfo.t ->
  Dca_profiling.Depprof.profile ->
  Driver.loop_result list ->
  advice list

val to_string : advice -> string

val report : advice list -> string
(** The full advisory, most valuable loops first. *)
