(** Dynamic dependence, cost and coverage profiler.

    One instrumented run of the program (an {!Dca_interp.Events.sink}
    attached to the evaluator) produces, for every static loop:

    - the set of {e cross-iteration} dependences observed (RAW / WAR /
      WAW), deduplicated by (kind, reader, writer) instruction pair, with
      a sample location — the raw material of the dependence-profiling and
      DiscoPoP-style baselines (paper §V-A) and of the privatization /
      reduction planning of the parallelizer (§IV-C);
    - per-invocation iteration counts and per-iteration costs in executed
      IR instructions — the workload description the simulated multicore
      machine consumes;
    - coverage buckets: executed-instruction counts keyed by the stack of
      dynamically active loops, from which the "sequential coverage" of
      any set of detected loops (Table IV) is computed exactly.

    Loop contexts span function calls: an access performed by a callee is
    attributed to every loop active on the call stack, so loops containing
    calls are profiled correctly. *)

type dep_kind = Raw | War | Waw

type dep = {
  d_kind : dep_kind;
  d_write_iid : int;  (** writer instruction id (earlier access for RAW) *)
  d_read_iid : int;  (** reader instruction id; for WAW the later writer *)
  d_loc : Dca_interp.Events.loc;  (** sample location exhibiting the dependence *)
}

type invocation = { inv_iters : int; inv_iter_costs : int array }

type loop_profile = {
  mutable lp_invocations : invocation list;  (** most recent first *)
  mutable lp_total_cost : int;  (** instructions in the loop's dynamic extent *)
  mutable lp_total_iters : int;
  mutable lp_deps : dep list;
}

type profile = {
  pr_loops : (string, loop_profile) Hashtbl.t;  (** keyed by loop id *)
  pr_total_cost : int;  (** all executed instructions *)
  pr_buckets : (string list * int) list;  (** active-loop-stack → cost *)
}

val profile_program : ?fuel:int -> ?input:int list -> Dca_analysis.Proginfo.t -> profile
(** Run [main] once under instrumentation. *)

val loop_profile : profile -> string -> loop_profile option

val coverage_of : profile -> string list -> float
(** Fraction (0–1) of all executed instructions spent inside the dynamic
    extent of at least one of the given loops. *)

val deps_of : profile -> string -> dep list

val dep_kind_to_string : dep_kind -> string
