(** The JSON-lines wire protocol of [dca serve] (grammar in DESIGN.md
    §12): one request object per line in, one response object per line
    out, in order.  Unknown request fields are ignored; the [id] is
    echoed verbatim so a pipelining client can match replies. *)

type program_source =
  | Named of string  (** registry benchmark name or server-side file path *)
  | Inline of { file : string; source : string; input : int list }
      (** MiniC source shipped in the request *)

type op =
  | Analyze  (** run (or serve from cache) the DCA pipeline *)
  | Ping  (** liveness probe *)
  | Stats  (** server + cache counters *)
  | Shutdown  (** reply, then stop accepting and exit the serve loop *)

type status =
  | Ok
  | Busy
      (** overload shed: the daemon refused the request (queue beyond
          [--max-queue], or a worker crashed mid-request).  Nothing was
          analyzed or cached, so retrying after a backoff is always
          safe — {!Client.request_retry} does exactly that. *)
  | Error

val status_to_string : status -> string

val status_of_string : string -> status
(** ["ok"] and ["busy"] map to their constructors; anything else —
    including statuses a future daemon might add — degrades to
    [Error]. *)

type request = {
  rq_id : int;
  rq_op : op;
  rq_program : program_source option;  (** required for [Analyze] *)
  rq_jobs : int option;  (** session pool width (results identical for every value) *)
  rq_shuffles : int option;  (** random schedules, as [dca analyze --shuffles] *)
  rq_hierarchical : bool;
  rq_no_escalate : bool;
  rq_deadline_ms : int option;
  rq_heap_words : int option;
  rq_faults : string option;
      (** {!Dca_support.Faultpoint} plan armed for this request only *)
  rq_no_cache : bool;  (** bypass cache lookup (the result is still stored) *)
  rq_no_static : bool;
      (** disable the {!Dca_analysis.Staticproof} fast-path, as
          [dca analyze --no-static]; part of the config digest, so
          static and dynamic verdicts never share cache entries *)
}

val default_request : request
(** [Ping] with id 0 and every option unset — build requests with record
    update syntax. *)

type loop_info = {
  li_label : string;
  li_decision : string;
  li_cached : bool;
  li_provenance : Dca_core.Report.provenance;
}

type response = {
  rp_id : int;
  rp_req : int;
      (** server-assigned request id (monotonic per daemon, 0 when the
          response never went through an engine) — the same id appears
          in the access log's [req] field and as the [req] argument of
          the request's trace span, so one request can be followed
          across all three sinks *)
  rp_status : status;
  rp_error : string option;  (** reason for [Busy] and [Error] replies *)
  rp_report : string option;  (** byte-identical to [dca analyze] output *)
  rp_loops : loop_info list;
  rp_hits : int;  (** per-request verdict-cache hits *)
  rp_misses : int;
  rp_counters : (string * int) list;  (** [Stats] replies *)
  rp_metrics : Json.t option;  (** [Stats] replies: {!Metrics.snapshot} as JSON *)
  rp_elapsed_ns : int;
}

val ok_response : id:int -> response
val error_response : id:int -> string -> response

val busy_response : id:int -> string -> response
(** An overload-shed reply; the message explains why (queue full, worker
    crash) and is carried in [rp_error]. *)

val ok : response -> bool
(** [rp_status = Ok]. *)

val op_to_string : op -> string
val op_of_string : string -> op option

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val request_line : request -> string
(** One line, no newline appended. *)

val response_line : response -> string
val parse_request : string -> (request, string) result
val parse_response : string -> (response, string) result
