lib/dca/advisor.ml: Buffer Candidate Commutativity Dca_analysis Dca_parallel Dca_profiling Driver List Loops Machine Planner Printf Proginfo Skeleton String
