open Dca_frontend
(** The intermediate representation.

    A function is a CFG of basic blocks over a three-address instruction
    set.  Memory is cell-addressed: every scalar (int, float, pointer)
    occupies one cell; struct and array layouts are computed by {!Layout}.
    Frame variables (locals, parameters, temporaries) live in register-like
    slots; global scalars live in a global table accessed with
    [Gload]/[Gstore]; aggregates live in heap blocks reached through
    pointers.  This mirrors the LLVM-level view the paper's analyses
    operate on: explicit loads/stores, explicit address arithmetic ([Gep]),
    and branch-terminated blocks. *)

type ty = Ast.ty

type var = {
  vid : int;  (** program-unique id *)
  vname : string;
  vty : ty;
  vglobal : bool;
  vslot : int;  (** global-table slot if [vglobal], else frame slot *)
  vtemp : bool;  (** compiler-introduced temporary *)
}

type operand = Ovar of var | Oint of int | Ofloat of float | Onull

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod  (** integer arithmetic *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv  (** float arithmetic *)
  | Cmp of rel  (** polymorphic comparison; operands share a type *)
  | Andl
  | Orl  (** logical on canonical 0/1 ints (non-short-circuit) *)

and rel = Req | Rne | Rlt | Rle | Rgt | Rge

type unop = Neg | Fneg | Not | Itof | Ftoi

type instr = { iid : int;  (** program-unique instruction id *) idesc : idesc; iloc : Loc.t }

and idesc =
  | Bin of var * binop * operand * operand
  | Un of var * unop * operand
  | Mov of var * operand
  | Load of var * operand  (** dst <- *ptr *)
  | Store of operand * operand  (** *ptr <- src *)
  | Gep of var * operand * operand * int  (** dst = base + index * scale (cells) *)
  | Gload of var * var  (** dst <- global scalar *)
  | Gstore of var * operand  (** global scalar <- src *)
  | Gaddr of var * var  (** dst <- pointer to global aggregate's block *)
  | Alloc of var * ty * operand  (** dst = fresh block holding [count] elements of [ty] *)
  | Call of var option * string * operand list
  | Print of operand
  | Prints of string

type term =
  | Br of int
  | Cbr of operand * int * int  (** non-zero → first target *)
  | Ret of operand option

type block = { bid : int; mutable instrs : instr list; mutable bterm : term; bloc : Loc.t }

type func = {
  fname : string;
  fparams : var list;
  fret : ty;
  fblocks : block array;  (** indexed by block id *)
  fentry : int;
  fnslots : int;  (** frame size in slots *)
  flocal_aggs : var list;  (** local aggregates (their slots hold block pointers) *)
  floc : Loc.t;
}

type gdef = {
  g_var : var;
  g_aggregate : bool;
  g_size : int;  (** cells of the backing block (aggregates) or 1 *)
  g_kinds : Layout.cellkind array;  (** cell kinds, length [g_size] *)
  g_init : operand option;  (** constant initializer for scalars *)
}

type program = {
  p_structs : Ast.struct_def list;
  p_layout : Layout.t;
  p_globals : gdef array;  (** indexed by global slot *)
  p_funcs : func list;
}

let find_func p name = List.find_opt (fun f -> f.fname = name) p.p_funcs

let find_func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.find_func_exn: no function '%s'" name)

(* ------------------------------------------------------------------ *)
(* Def/use accessors                                                   *)
(* ------------------------------------------------------------------ *)

let operand_var = function Ovar v -> Some v | Oint _ | Ofloat _ | Onull -> None

(** Frame variable defined by an instruction, if any. *)
let def_of = function
  | Bin (d, _, _, _)
  | Un (d, _, _)
  | Mov (d, _)
  | Load (d, _)
  | Gep (d, _, _, _)
  | Gload (d, _)
  | Gaddr (d, _)
  | Alloc (d, _, _) ->
      Some d
  | Call (d, _, _) -> d
  | Store _ | Gstore _ | Print _ | Prints _ -> None

(** Frame variables read by an instruction (global scalars excluded: they
    are memory, tracked separately). *)
let uses_of idesc =
  let of_ops ops = List.filter_map operand_var ops in
  match idesc with
  | Bin (_, _, a, b) -> of_ops [ a; b ]
  | Un (_, _, a) | Mov (_, a) | Load (_, a) | Alloc (_, _, a) | Print a -> of_ops [ a ]
  | Store (p, v) -> of_ops [ p; v ]
  | Gep (_, base, idx, _) -> of_ops [ base; idx ]
  | Gload (_, _) -> []
  | Gstore (_, src) -> of_ops [ src ]
  | Gaddr (_, _) -> []
  | Call (_, _, args) -> of_ops args
  | Prints _ -> []

(** Global scalar read / written by an instruction, if any. *)
let gload_of = function Gload (_, g) -> Some g | _ -> None
let gstore_of = function Gstore (g, _) -> Some g | _ -> None

let term_uses = function
  | Br _ -> []
  | Cbr (c, _, _) -> ( match operand_var c with Some v -> [ v ] | None -> [])
  | Ret (Some op) -> ( match operand_var op with Some v -> [ v ] | None -> [])
  | Ret None -> []

let term_succs = function Br t -> [ t ] | Cbr (_, a, b) -> if a = b then [ a ] else [ a; b ] | Ret _ -> []

(** Does the instruction touch memory (heap cells or global scalars)? *)
let touches_memory = function
  | Load _ | Store _ | Gload _ | Gstore _ | Alloc _ -> true
  | Call _ -> true (* conservatively; refined by the purity analysis *)
  | Bin _ | Un _ | Mov _ | Gep _ | Gaddr _ | Print _ | Prints _ -> false

let is_io = function Print _ | Prints _ -> true | Call (_, ("reads" | "print" | "printi"), _) -> true | _ -> false

let rel_to_string = function
  | Req -> "=="
  | Rne -> "!="
  | Rlt -> "<"
  | Rle -> "<="
  | Rgt -> ">"
  | Rge -> ">="

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Cmp r -> "cmp" ^ rel_to_string r
  | Andl -> "and"
  | Orl -> "or"

let unop_to_string = function
  | Neg -> "neg"
  | Fneg -> "fneg"
  | Not -> "not"
  | Itof -> "itof"
  | Ftoi -> "ftoi"
