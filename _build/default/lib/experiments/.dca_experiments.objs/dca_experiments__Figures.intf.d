lib/experiments/figures.mli: Dca_parallel Evaluation
