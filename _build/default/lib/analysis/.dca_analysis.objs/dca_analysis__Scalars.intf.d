lib/analysis/scalars.mli: Affine Dca_ir Liveness Loops
