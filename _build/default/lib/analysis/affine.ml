open Dca_support
open Dca_ir

type term = Tiv of string | Tsym of int | Tglob of int

type affine = { coeffs : (term * int) list; const : int }

type root = Rglobal of int | Ralloc of int | Rparam of int | Runknown

type access = {
  acc_iid : int;
  acc_write : bool;
  acc_root : root;
  acc_subscript : affine option;
  acc_loc : Dca_frontend.Loc.t;
}

type t = {
  cfg : Cfg.t;
  forest : Loops.forest;
  defs_by_var : (int, Ir.instr list) Hashtbl.t;
  block_of_iid : (int, int) Hashtbl.t;
  ivs : (string, Ir.var * int) Hashtbl.t;  (** loop id → (iv, step) *)
  param_ids : Intset.t;
}

(* ------------------------------------------------------------------ *)
(* Affine arithmetic                                                   *)
(* ------------------------------------------------------------------ *)

let compare_term a b =
  let rank = function Tiv _ -> 0 | Tsym _ -> 1 | Tglob _ -> 2 in
  match (a, b) with
  | Tiv x, Tiv y -> compare x y
  | Tsym x, Tsym y -> compare x y
  | Tglob x, Tglob y -> compare x y
  | _ -> compare (rank a) (rank b)

let normalize coeffs =
  coeffs
  |> List.sort (fun (t1, _) (t2, _) -> compare_term t1 t2)
  |> List.fold_left
       (fun acc (t, c) ->
         match acc with
         | (t', c') :: rest when compare_term t t' = 0 -> (t', c' + c) :: rest
         | _ -> (t, c) :: acc)
       []
  |> List.rev
  |> List.filter (fun (_, c) -> c <> 0)

let const_affine n = { coeffs = []; const = n }
let term_affine t = { coeffs = [ (t, 1) ]; const = 0 }

let affine_add a b = { coeffs = normalize (a.coeffs @ b.coeffs); const = a.const + b.const }

let affine_scale k a =
  if k = 0 then const_affine 0
  else { coeffs = List.map (fun (t, c) -> (t, k * c)) a.coeffs; const = k * a.const }

let affine_sub a b = affine_add a (affine_scale (-1) b)
let affine_equal a b = a.coeffs = b.coeffs && a.const = b.const

let pp_affine fmt a =
  let term_str = function
    | Tiv l, c -> Printf.sprintf "%d*iv(%s)" c l
    | Tsym v, c -> Printf.sprintf "%d*v%d" c v
    | Tglob g, c -> Printf.sprintf "%d*g%d" c g
  in
  Format.fprintf fmt "%s%s"
    (String.concat " + " (List.map term_str a.coeffs))
    (if a.const <> 0 || a.coeffs = [] then Printf.sprintf " + %d" a.const else "")

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let defs_in_loop t (l : Loops.loop) vid =
  match Hashtbl.find_opt t.defs_by_var vid with
  | None -> []
  | Some defs ->
      List.filter
        (fun i ->
          match Hashtbl.find_opt t.block_of_iid i.Ir.iid with
          | Some b -> Loops.contains_block l b
          | None -> false)
        defs

let is_loop_invariant t l (v : Ir.var) = (not v.Ir.vglobal) && defs_in_loop t l v.Ir.vid = []

(* Is the global scalar slot stored to anywhere inside the loop? *)
let global_stored_in_loop t (l : Loops.loop) slot =
  Intset.exists
    (fun b ->
      List.exists
        (fun i ->
          match i.Ir.idesc with Ir.Gstore (g, _) -> g.Ir.vslot = slot | _ -> false)
        (Cfg.block t.cfg b).Ir.instrs)
    l.Loops.l_blocks

(* A basic induction variable of [l]: a non-global scalar with exactly one
   in-loop definition of the shape [v = v + c] or [v = v - c].  Lowering
   materializes the update as [t = add v, c; v = t], so the recognizer
   looks through the [Mov] to the unique definition of the temporary. *)
let find_induction t (l : Loops.loop) =
  let add_pattern vid (i : Ir.instr) =
    match i.Ir.idesc with
    | Ir.Bin (_, Ir.Add, Ir.Ovar v, Ir.Oint c) when v.Ir.vid = vid -> Some c
    | Ir.Bin (_, Ir.Add, Ir.Oint c, Ir.Ovar v) when v.Ir.vid = vid -> Some c
    | Ir.Bin (_, Ir.Sub, Ir.Ovar v, Ir.Oint c) when v.Ir.vid = vid -> Some (-c)
    | _ -> None
  in
  let candidates = Hashtbl.create 4 in
  Intset.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.idesc with
          | Ir.Mov (d, Ir.Ovar tmp) -> begin
              match defs_in_loop t l tmp.Ir.vid with
              | [ def ] -> (
                  match add_pattern d.Ir.vid def with
                  | Some c -> Hashtbl.replace candidates d.Ir.vid (d, c)
                  | None -> ())
              | _ -> ()
            end
          | _ -> (
              match Ir.def_of i.Ir.idesc with
              | Some d -> (
                  match add_pattern d.Ir.vid i with
                  | Some c -> Hashtbl.replace candidates d.Ir.vid (d, c)
                  | None -> ())
              | None -> ()))
        (Cfg.block t.cfg b).Ir.instrs)
    l.Loops.l_blocks;
  (* The candidate must have exactly that one in-loop def. *)
  Hashtbl.fold
    (fun vid (v, step) acc ->
      if List.length (defs_in_loop t l vid) = 1 then (v, step) :: acc else acc)
    candidates []

let analyze cfg forest =
  let defs_by_var = Hashtbl.create 64 and block_of_iid = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
      List.iter
        (fun i ->
          Hashtbl.replace block_of_iid i.Ir.iid blk.Ir.bid;
          match Ir.def_of i.Ir.idesc with
          | Some v ->
              Hashtbl.replace defs_by_var v.Ir.vid
                (i :: (try Hashtbl.find defs_by_var v.Ir.vid with Not_found -> []))
          | None -> ())
        blk.Ir.instrs)
    (Cfg.func cfg).Ir.fblocks;
  let param_ids =
    List.fold_left (fun acc v -> Intset.add v.Ir.vid acc) Intset.empty (Cfg.func cfg).Ir.fparams
  in
  let t = { cfg; forest; defs_by_var; block_of_iid; ivs = Hashtbl.create 8; param_ids } in
  List.iter
    (fun l ->
      match find_induction t l with
      | [ (v, step) ] -> Hashtbl.replace t.ivs l.Loops.l_id (v, step)
      | _ :: _ :: _ | [] -> ())
    (Loops.loops forest);
  t

let induction_var t l = Hashtbl.find_opt t.ivs l.Loops.l_id

(* Is [v] the induction variable of [l] or of an enclosing loop? *)
let iv_loop_of t (l : Loops.loop) (v : Ir.var) =
  let path = Loops.nesting_path t.forest l in
  List.find_opt
    (fun anc ->
      match Hashtbl.find_opt t.ivs anc.Loops.l_id with
      | Some (iv, _) -> iv.Ir.vid = v.Ir.vid
      | None -> false)
    path

(* ------------------------------------------------------------------ *)
(* Affine recognition by def-chain walking                             *)
(* ------------------------------------------------------------------ *)

let rec affine_of t l depth (op : Ir.operand) : affine option =
  if depth > 24 then None
  else
    match op with
    | Ir.Oint n -> Some (const_affine n)
    | Ir.Ofloat _ | Ir.Onull -> None
    | Ir.Ovar v -> (
        if v.Ir.vglobal then None
        else
          match iv_loop_of t l v with
          | Some anc -> Some (term_affine (Tiv anc.Loops.l_id))
          | None -> (
              if is_loop_invariant t l v then Some (term_affine (Tsym v.Ir.vid))
              else
                (* a chain variable: must have a unique in-loop def we can
                   look through *)
                match defs_in_loop t l v.Ir.vid with
                | [ i ] -> affine_of_def t l (depth + 1) i
                | _ -> None))

and affine_of_def t l depth (i : Ir.instr) : affine option =
  let recur = affine_of t l depth in
  match i.Ir.idesc with
  | Ir.Mov (_, src) -> recur src
  | Ir.Bin (_, Ir.Add, a, b) -> (
      match (recur a, recur b) with Some x, Some y -> Some (affine_add x y) | _ -> None)
  | Ir.Bin (_, Ir.Sub, a, b) -> (
      match (recur a, recur b) with Some x, Some y -> Some (affine_sub x y) | _ -> None)
  | Ir.Bin (_, Ir.Mul, a, Ir.Oint k) | Ir.Bin (_, Ir.Mul, Ir.Oint k, a) -> (
      match recur a with Some x -> Some (affine_scale k x) | None -> None)
  | Ir.Bin (_, Ir.Mul, a, b) -> (
      (* symbolic * affine is affine only if one side is an invariant symbol
         times a constant-free...: keep it simple and reject *)
      match (recur a, recur b) with
      | Some { coeffs = []; const = k }, Some y -> Some (affine_scale k y)
      | Some x, Some { coeffs = []; const = k } -> Some (affine_scale k x)
      | _ -> None)
  | Ir.Un (_, Ir.Neg, a) -> ( match recur a with Some x -> Some (affine_scale (-1) x) | None -> None)
  | Ir.Gload (_, g) ->
      (* a global scalar never stored to inside the loop is a symbol, and
         the same slot unifies across re-loads (loop bounds like [n]) *)
      if global_stored_in_loop t l g.Ir.vslot then None else Some (term_affine (Tglob g.Ir.vslot))
  | _ -> None

let affine_of_operand t l op = affine_of t l 0 op

(* ------------------------------------------------------------------ *)
(* Address resolution                                                  *)
(* ------------------------------------------------------------------ *)

(* Resolve a pointer operand to (root, affine offset).  Walking is
   function-local and flow-insensitive; any ambiguity yields Runknown. *)
let rec resolve_ptr t l depth (op : Ir.operand) : root * affine option =
  if depth > 24 then (Runknown, None)
  else
    match op with
    | Ir.Onull | Ir.Oint _ | Ir.Ofloat _ -> (Runknown, None)
    | Ir.Ovar v -> (
        if v.Ir.vglobal then (Runknown, None)
        else if Intset.mem v.Ir.vid t.param_ids then (Rparam v.Ir.vid, Some (const_affine 0))
        else
          match Hashtbl.find_opt t.defs_by_var v.Ir.vid with
          | Some [ i ] -> resolve_ptr_def t l depth i
          | Some _ | None -> (Runknown, None))

and resolve_ptr_def t l depth (i : Ir.instr) : root * affine option =
  match i.Ir.idesc with
  | Ir.Gaddr (_, g) -> (Rglobal g.Ir.vslot, Some (const_affine 0))
  | Ir.Alloc (_, _, _) -> (Ralloc i.Ir.iid, Some (const_affine 0))
  | Ir.Gep (_, base, idx, scale) -> (
      let root, base_aff = resolve_ptr t l (depth + 1) base in
      match (base_aff, affine_of t l (depth + 1) idx) with
      | Some b, Some x -> (root, Some (affine_add b (affine_scale scale x)))
      | _ -> (root, None))
  | Ir.Mov (_, src) -> resolve_ptr t l (depth + 1) src
  | Ir.Load _ | Ir.Gload _ | Ir.Call _ -> (Runknown, None)
  | _ -> (Runknown, None)

let accesses_of_loop t (l : Loops.loop) =
  let out = ref [] in
  Intset.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.Ir.idesc with
          | Ir.Load (_, ptr) ->
              let root, sub = resolve_ptr t l 0 ptr in
              out :=
                { acc_iid = i.Ir.iid; acc_write = false; acc_root = root; acc_subscript = sub; acc_loc = i.Ir.iloc }
                :: !out
          | Ir.Store (ptr, _) ->
              let root, sub = resolve_ptr t l 0 ptr in
              out :=
                { acc_iid = i.Ir.iid; acc_write = true; acc_root = root; acc_subscript = sub; acc_loc = i.Ir.iloc }
                :: !out
          | Ir.Gload (_, g) ->
              out :=
                {
                  acc_iid = i.Ir.iid;
                  acc_write = false;
                  acc_root = Rglobal g.Ir.vslot;
                  acc_subscript = Some (const_affine 0);
                  acc_loc = i.Ir.iloc;
                }
                :: !out
          | Ir.Gstore (g, _) ->
              out :=
                {
                  acc_iid = i.Ir.iid;
                  acc_write = true;
                  acc_root = Rglobal g.Ir.vslot;
                  acc_subscript = Some (const_affine 0);
                  acc_loc = i.Ir.iloc;
                }
                :: !out
          | _ -> ())
        (Cfg.block t.cfg b).Ir.instrs)
    l.Loops.l_blocks;
  List.rev !out

(* A counted loop: single IV, and the header terminator compares the IV (or
   an affine function of it) against a loop-invariant bound. *)
let counted_header t (l : Loops.loop) =
  match induction_var t l with
  | None -> false
  | Some (iv, _) -> (
      let header = Cfg.block t.cfg l.Loops.l_header in
      match header.Ir.bterm with
      | Ir.Cbr (Ir.Ovar c, _, _) -> (
          match defs_in_loop t l c.Ir.vid with
          | [ { Ir.idesc = Ir.Bin (_, Ir.Cmp _, a, b); _ } ] ->
              (* one side is the IV; the other is affine and invariant in
                 this loop (constants, invariant locals, unstored globals,
                 outer induction variables) *)
              let invariant_bound other =
                match affine_of t l 0 other with
                | Some aff ->
                    List.for_all
                      (fun (term, _) ->
                        match term with
                        | Tiv lid -> lid <> l.Loops.l_id
                        | Tsym _ | Tglob _ -> true)
                      aff.coeffs
                | None -> false
              in
              let side_ok side other =
                (match side with Ir.Ovar v -> v.Ir.vid = iv.Ir.vid | _ -> false)
                && invariant_bound other
              in
              side_ok a b || side_ok b a
          | _ -> false)
      | _ -> false)
