lib/frontend/loc.ml: Format Printf
