lib/parallel/machine.mli:
