open Dca_ir
open Value

exception Trap of string
exception Out_of_fuel

type frame = { ffunc : Ir.func; regs : Value.t array }

type interceptor = { it_fname : string; it_header : int; mutable it_active : bool; it_handler : handler }
and handler = Handler of (ctx -> frame -> int)

and ctx = {
  prog : Ir.program;
  st : Store.t;
  funcs : (string, Ir.func) Hashtbl.t;
  mutable sink : Events.sink option;
  mutable nsteps : int;
  fuel : int;
  mutable interceptors : interceptor list;
}

type step_control = { sc_filter : Ir.instr -> bool; sc_override : int -> int option }

type stop_reason = Stopped_at of int | Returned of Value.t option

let default_fuel = 200_000_000

let create ?(fuel = default_fuel) ?(input = []) prog =
  let funcs = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace funcs f.Ir.fname f) prog.Ir.p_funcs;
  { prog; st = Store.create prog ~input; funcs; sink = None; nsteps = 0; fuel; interceptors = [] }

let fork ctx =
  {
    prog = ctx.prog;
    st = Store.copy ctx.st;
    funcs = ctx.funcs;
    sink = None;
    nsteps = ctx.nsteps;
    fuel = ctx.fuel;
    interceptors = [];
  }

let program ctx = ctx.prog
let store ctx = ctx.st
let steps ctx = ctx.nsteps
let set_sink ctx sink = ctx.sink <- sink
let outputs ctx = Store.outputs ctx.st

let trap fmt = Printf.ksprintf (fun msg -> raise (Trap msg)) fmt

let read_var frame (v : Ir.var) =
  let x = frame.regs.(v.vslot) in
  match x with VUndef -> trap "use of uninitialized variable '%s' in %s" v.vname frame.ffunc.fname | _ -> x

let write_var frame (v : Ir.var) x = frame.regs.(v.vslot) <- x

let eval_operand ctx frame = function
  | Ir.Ovar v ->
      (match ctx.sink with Some s -> s.Events.on_read (Events.Lreg v.vid) (-1) | None -> ());
      read_var frame v
  | Ir.Oint n -> VInt n
  | Ir.Ofloat f -> VFloat f
  | Ir.Onull -> VNull

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let int2 name f a b =
  match (a, b) with VInt x, VInt y -> VInt (f x y) | _ -> trap "%s expects ints" name

let float2 name f a b =
  match (a, b) with VFloat x, VFloat y -> VFloat (f x y) | _ -> trap "%s expects floats" name

let compare_values rel a b =
  let of_bool b = VInt (if b then 1 else 0) in
  let ord cmp =
    match rel with
    | Ir.Req -> cmp = 0
    | Ir.Rne -> cmp <> 0
    | Ir.Rlt -> cmp < 0
    | Ir.Rle -> cmp <= 0
    | Ir.Rgt -> cmp > 0
    | Ir.Rge -> cmp >= 0
  in
  match (a, b) with
  | VInt x, VInt y -> of_bool (ord (compare x y))
  | VFloat x, VFloat y -> of_bool (ord (compare x y))
  | (VPtr _ | VNull), (VPtr _ | VNull) -> begin
      match rel with
      | Ir.Req -> of_bool (a = b)
      | Ir.Rne -> of_bool (a <> b)
      | _ -> trap "ordered comparison of pointers"
    end
  | _ -> trap "comparison of incompatible values %s and %s" (to_string a) (to_string b)

let eval_binop op a b =
  match op with
  | Ir.Add -> int2 "add" ( + ) a b
  | Ir.Sub -> int2 "sub" ( - ) a b
  | Ir.Mul -> int2 "mul" ( * ) a b
  | Ir.Div -> (
      match b with VInt 0 -> trap "integer division by zero" | _ -> int2 "div" ( / ) a b)
  | Ir.Mod -> (
      match b with VInt 0 -> trap "integer modulo by zero" | _ -> int2 "mod" (fun x y -> x mod y) a b)
  | Ir.Fadd -> float2 "fadd" ( +. ) a b
  | Ir.Fsub -> float2 "fsub" ( -. ) a b
  | Ir.Fmul -> float2 "fmul" ( *. ) a b
  | Ir.Fdiv -> float2 "fdiv" ( /. ) a b
  | Ir.Cmp rel -> compare_values rel a b
  | Ir.Andl -> int2 "and" (fun x y -> if x <> 0 && y <> 0 then 1 else 0) a b
  | Ir.Orl -> int2 "or" (fun x y -> if x <> 0 || y <> 0 then 1 else 0) a b

let eval_unop op a =
  match (op, a) with
  | Ir.Neg, VInt x -> VInt (-x)
  | Ir.Fneg, VFloat x -> VFloat (-.x)
  | Ir.Not, VInt x -> VInt (if x = 0 then 1 else 0)
  | Ir.Not, VNull -> VInt 1
  | Ir.Not, VPtr _ -> VInt 0
  | Ir.Itof, VInt x -> VFloat (float_of_int x)
  | Ir.Ftoi, VFloat x -> VInt (int_of_float x)
  | _ -> trap "unary %s applied to %s" (Ir.unop_to_string op) (to_string a)

(* hrand: a pure hash-based PRN in [0,1) — splitmix64 finalizer. *)
let hrand_of_int i =
  let z = Int64.of_int i in
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let float1 name f = function VFloat x -> VFloat (f x) | v -> trap "%s expects a float, got %s" name (to_string v)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let emit_read ctx loc instr =
  match ctx.sink with Some s -> s.Events.on_read loc instr | None -> ()

let emit_write ctx loc instr =
  match ctx.sink with Some s -> s.Events.on_write loc instr | None -> ()

let rec exec_instr ctx frame (i : Ir.instr) =
  ctx.nsteps <- ctx.nsteps + 1;
  if ctx.nsteps > ctx.fuel then raise Out_of_fuel;
  (match ctx.sink with Some s -> s.Events.on_exec i | None -> ());
  let ev op =
    (* operand evaluation with register-read events attributed to [i] *)
    match op with
    | Ir.Ovar v ->
        emit_read ctx (Events.Lreg v.vid) i.iid;
        read_var frame v
    | Ir.Oint n -> VInt n
    | Ir.Ofloat f -> VFloat f
    | Ir.Onull -> VNull
  in
  let def v x =
    emit_write ctx (Events.Lreg v.Ir.vid) i.iid;
    write_var frame v x
  in
  match i.idesc with
  | Ir.Bin (d, op, a, b) ->
      let va = ev a in
      let vb = ev b in
      def d (eval_binop op va vb)
  | Ir.Un (d, op, a) -> def d (eval_unop op (ev a))
  | Ir.Mov (d, a) -> def d (ev a)
  | Ir.Load (d, p) -> begin
      match ev p with
      | VPtr (block, off) ->
          emit_read ctx (Events.Lheap (block, off)) i.iid;
          let v =
            try Store.load ctx.st ~block ~off with Failure msg -> trap "%s" msg
          in
          def d v
      | VNull -> trap "load through null pointer at %s" (Dca_frontend.Loc.to_string i.iloc)
      | v -> trap "load through non-pointer %s" (to_string v)
    end
  | Ir.Store (p, src) -> begin
      match ev p with
      | VPtr (block, off) ->
          let v = ev src in
          emit_write ctx (Events.Lheap (block, off)) i.iid;
          (try Store.store ctx.st ~block ~off v with Failure msg -> trap "%s" msg)
      | VNull -> trap "store through null pointer at %s" (Dca_frontend.Loc.to_string i.iloc)
      | v -> trap "store through non-pointer %s" (to_string v)
    end
  | Ir.Gep (d, base, idx, scale) -> begin
      match (ev base, ev idx) with
      | VPtr (block, off), VInt k -> def d (VPtr (block, off + (k * scale)))
      | VNull, _ -> trap "pointer arithmetic on null at %s" (Dca_frontend.Loc.to_string i.iloc)
      | vb, vi -> trap "gep on %s with index %s" (to_string vb) (to_string vi)
    end
  | Ir.Gload (d, g) ->
      emit_read ctx (Events.Lglob g.vslot) i.iid;
      def d (Store.read_global ctx.st g.vslot)
  | Ir.Gstore (g, src) ->
      let v = ev src in
      emit_write ctx (Events.Lglob g.vslot) i.iid;
      Store.write_global ctx.st g.vslot v
  | Ir.Gaddr (d, g) -> def d (Store.read_global ctx.st g.vslot)
  | Ir.Alloc (d, ty, count) -> begin
      match ev count with
      | VInt n when n >= 0 ->
          let kinds = Layout.cell_kinds ctx.prog.Ir.p_layout ty in
          let id = Store.alloc ctx.st kinds ~count:n in
          def d (VPtr (id, 0))
      | v -> trap "alloc with bad count %s" (to_string v)
    end
  | Ir.Call (dst, name, args) -> begin
      let vargs = List.map ev args in
      match eval_builtin ctx i name vargs with
      | Some result -> ( match dst with Some d -> def d result | None -> ())
      | None -> (
          let ret = call_user ctx name vargs in
          match (dst, ret) with
          | Some d, Some v -> def d v
          | Some d, None -> trap "function %s returned no value for %s" name d.vname
          | None, _ -> ())
    end
  | Ir.Print v -> Store.print_value ctx.st (ev v)
  | Ir.Prints s -> Store.print_string_ ctx.st s

and eval_builtin ctx instr name args : Value.t option =
  let iid = instr.Ir.iid in
  match (name, args) with
  | "sqrt", [ v ] -> Some (float1 "sqrt" sqrt v)
  | "fabs", [ v ] -> Some (float1 "fabs" abs_float v)
  | "sin", [ v ] -> Some (float1 "sin" sin v)
  | "cos", [ v ] -> Some (float1 "cos" cos v)
  | "exp", [ v ] -> Some (float1 "exp" exp v)
  | "log", [ v ] -> Some (float1 "log" log v)
  | "floor", [ v ] -> Some (float1 "floor" floor v)
  | "pow", [ a; b ] -> Some (float2 "pow" ( ** ) a b)
  | "fmod", [ a; b ] -> Some (float2 "fmod" Float.rem a b)
  | "fmin", [ a; b ] -> Some (float2 "fmin" Float.min a b)
  | "fmax", [ a; b ] -> Some (float2 "fmax" Float.max a b)
  | "imin", [ a; b ] -> Some (int2 "imin" min a b)
  | "imax", [ a; b ] -> Some (int2 "imax" max a b)
  | "iabs", [ v ] -> Some (match v with VInt x -> VInt (abs x) | _ -> trap "iabs expects an int")
  | "itof", [ v ] -> Some (eval_unop Ir.Itof v)
  | "ftoi", [ v ] -> Some (eval_unop Ir.Ftoi v)
  | "hrand", [ v ] -> Some (match v with VInt x -> VFloat (hrand_of_int x) | _ -> trap "hrand expects an int")
  | "drand", [] ->
      emit_read ctx Events.Lrng iid;
      emit_write ctx Events.Lrng iid;
      Some (VFloat (Store.drand ctx.st))
  | "dseed", [ v ] ->
      emit_write ctx Events.Lrng iid;
      (match v with VInt x -> Store.dseed ctx.st x | _ -> trap "dseed expects an int");
      Some (VInt 0)
  | "reads", [] -> Some (VInt (Store.read_input ctx.st))
  | _ -> None

and call_user ctx name vargs : Value.t option =
  let f =
    match Hashtbl.find_opt ctx.funcs name with
    | Some f -> f
    | None -> trap "call to undefined function '%s'" name
  in
  let frame = { ffunc = f; regs = Array.make f.Ir.fnslots VUndef } in
  (try List.iter2 (fun p v -> write_var frame p v) f.Ir.fparams vargs
   with Invalid_argument _ -> trap "arity mismatch calling %s" name);
  (match ctx.sink with Some s -> s.Events.on_call name | None -> ());
  let result =
    match exec_from ctx frame f.Ir.fentry ~stop:(fun _ -> false) ~control:None ~src:(-1) with
    | Returned v -> v
    | Stopped_at _ -> assert false
  in
  (match ctx.sink with Some s -> s.Events.on_return name | None -> ());
  result

(* Core block-chain executor.  [src] is the predecessor block (-1 on
   entry); [stop] is consulted on every transfer except the initial one. *)
and exec_from ctx frame bid ~stop ~control ~src : stop_reason =
  (* interceptors fire on transfers into their header during any execution
     in which they are not already active *)
  match
    List.find_opt
      (fun it ->
        it.it_fname = frame.ffunc.Ir.fname && it.it_header = bid && not it.it_active)
      ctx.interceptors
  with
  | Some it ->
      it.it_active <- true;
      let continue_at =
        Fun.protect
          ~finally:(fun () -> it.it_active <- false)
          (fun () -> match it.it_handler with Handler h -> h ctx frame)
      in
      exec_from ctx frame continue_at ~stop ~control ~src:bid
  | None ->
      (match ctx.sink with Some s -> s.Events.on_block ~fname:frame.ffunc.Ir.fname ~src ~dst:bid | None -> ());
      let blk = frame.ffunc.Ir.fblocks.(bid) in
      List.iter
        (fun i ->
          let keep = match control with Some c -> c.sc_filter i | None -> true in
          if keep then exec_instr ctx frame i)
        blk.Ir.instrs;
      let continue_to target =
        if stop target then begin
          (* surface the pending transfer so recorders see loop-exit and
             latch edges even though the target block is not executed *)
          (match ctx.sink with
          | Some s -> s.Events.on_block ~fname:frame.ffunc.Ir.fname ~src:bid ~dst:target
          | None -> ());
          Stopped_at target
        end
        else exec_from ctx frame target ~stop ~control ~src:bid
      in
      (match blk.Ir.bterm with
      | Ir.Br t -> continue_to t
      | Ir.Cbr (c, a, b) -> begin
          let forced = match control with Some ctl -> ctl.sc_override bid | None -> None in
          match forced with
          | Some t -> continue_to t
          | None ->
              let v = eval_operand ctx frame c in
              continue_to (if truthy v then a else b)
        end
      | Ir.Ret op -> Returned (Option.map (eval_operand ctx frame) op))

let exec_upto ctx frame ~start ~stop ~control = exec_from ctx frame start ~stop ~control ~src:(-1)

let call_function ctx name args = call_user ctx name args

let run_main ctx = ignore (call_user ctx "main" [])

let add_interceptor ctx ~fname ~header handler =
  ctx.interceptors <-
    { it_fname = fname; it_header = header; it_active = false; it_handler = Handler handler }
    :: ctx.interceptors

let clear_interceptors ctx = ctx.interceptors <- []

let globals_of ctx =
  Array.to_list (Array.mapi (fun slot g -> (g, Store.read_global ctx.st slot)) ctx.prog.Ir.p_globals)
