(** Unix-domain-socket transport for the serve {!Engine}.

    One accept loop, one connection at a time, one request line at a
    time: the engine owns process-global state (telemetry, faultpoint
    plans, the verdict cache), and serializing requests is what makes
    per-request telemetry deltas and fault scoping meaningful.  Clients
    queue in the listen backlog. *)

type config = {
  sv_socket : string;  (** Unix-domain socket path *)
  sv_cache_dir : string option;  (** persistent cache directory ({!Vcache}) *)
  sv_cache_capacity : int option;
  sv_sessions : int;  (** warm-session LRU bound *)
  sv_jobs : int option;  (** default pool width for requests without one *)
  sv_access_log : string option;
      (** JSONL access log, one object per request (appended) *)
  sv_max_requests : int option;
      (** stop after serving this many requests — tests and smoke runs *)
}

val default_config : string -> config
(** Defaults for the given socket path: memory-only cache, 8 warm
    sessions, no access log, serve until [shutdown]. *)

val run : config -> int
(** Bind (reclaiming a stale socket file from a crashed daemon first,
    but never a live one), then serve until a [shutdown] request or the
    request budget is exhausted.  Returns the number of requests served.
    The socket file is removed and all warm sessions closed on the way
    out, also on exception. *)
