(* Full pipeline on an NPB kernel: detection, baseline comparison,
   planning, and simulated parallel execution — everything Figs. 6/7 do
   for ten benchmarks, narrated for one (CG).

   Run with:  dune exec examples/npb_pipeline.exe [BENCH]                *)

open Dca_experiments

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "CG" in
  let bm =
    match Dca_progs.Registry.find name with
    | Some bm -> bm
    | None ->
        Printf.eprintf "unknown benchmark '%s' (try: dca list)\n" name;
        exit 1
  in
  Printf.printf "=== %s: %s ===\n\n" name bm.Dca_progs.Benchmark.bm_description;

  let ev = Evaluation.evaluate bm in

  (* detection summary *)
  Printf.printf "loops: %d\n" (Evaluation.total_loops ev);
  Printf.printf "DCA commutative: %d\n" (List.length (Evaluation.dca_commutative ev));
  List.iter
    (fun tool ->
      Printf.printf "%-14s: %d\n" tool.Dca_baselines.Tool.tool_name
        (List.length (Evaluation.tool_parallel ev tool.Dca_baselines.Tool.tool_name)))
    Dca_baselines.Registry.all;
  Printf.printf "combined static: %d\n\n" (List.length (Evaluation.combined_static ev));

  (* per-loop detail *)
  print_endline "per-loop DCA verdicts:";
  Dca_core.Report.print ev.Evaluation.ev_dca;

  (* coverage *)
  Printf.printf "\nsequential coverage of DCA-detected loops: %.0f%%\n"
    (100.0 *. Evaluation.coverage ev (Evaluation.dca_commutative ev));
  Printf.printf "sequential coverage of combined static:    %.0f%%\n"
    (100.0 *. Evaluation.coverage ev (Evaluation.combined_static ev));

  (* plan and simulate *)
  let plan = Figures.dca_plan_for ev in
  Printf.printf "\nparallel plan (expert-profitable commutative loops):\n%s\n"
    (Dca_parallel.Plan.to_string plan);
  let result =
    Dca_parallel.Speedup.simulate ~machine:Evaluation.machine ev.Evaluation.ev_info
      ev.Evaluation.ev_profile plan
  in
  Printf.printf "\nsimulated speedup on 72 workers: %.2fx (paper Fig. 6: %.1fx)\n"
    result.Dca_parallel.Speedup.sp_speedup
    (Paper_data.npb_row name).Paper_data.p_dca_speedup
