(* End-to-end interpreter tests: compile MiniC, run, inspect outputs and
   state; checkpoint/restore; observable-state capture. *)

open Dca_ir
open Dca_interp

let compile src = Lower.compile ~file:"<test>" src

let run ?input src =
  let p = compile src in
  let ctx = Eval.create ?input p in
  Eval.run_main ctx;
  (ctx, Eval.outputs ctx)

let outputs ?input src = snd (run ?input src)

let test_arith () =
  let out = outputs "void main() { printi(2 + 3 * 4); printi(10 / 3); printi(10 % 3); printi(-7); }" in
  Alcotest.(check (list string)) "ints" [ "14"; "3"; "1"; "-7" ] out

let test_float_math () =
  match outputs "void main() { print(sqrt(2.0)); print(pow(2.0, 10.0)); print(fmax(1.5, -2.0)); }" with
  | [ a; b; c ] ->
      Alcotest.(check (float 1e-9)) "sqrt" (sqrt 2.0) (float_of_string a);
      Alcotest.(check (float 1e-9)) "pow" 1024.0 (float_of_string b);
      Alcotest.(check (float 1e-9)) "fmax" 1.5 (float_of_string c)
  | out -> Alcotest.failf "unexpected output: %s" (String.concat "|" out)

let test_control_flow () =
  let out =
    outputs
      {|
      void main() {
        int total = 0;
        int i;
        for (i = 0; i < 10; i = i + 1) {
          if (i % 2 == 0) { continue; }
          if (i > 7) { break; }
          total = total + i;
        }
        printi(total);  // 1 + 3 + 5 + 7 = 16
      }
      |}
  in
  Alcotest.(check (list string)) "loop" [ "16" ] out

let test_arrays () =
  let out =
    outputs
      {|
      float grid[3][4];
      void main() {
        int i;
        int j;
        for (i = 0; i < 3; i = i + 1) {
          for (j = 0; j < 4; j = j + 1) { grid[i][j] = itof(i * 10 + j); }
        }
        print(grid[2][3]);
        float total = 0.0;
        for (i = 0; i < 3; i = i + 1) {
          for (j = 0; j < 4; j = j + 1) { total = total + grid[i][j]; }
        }
        print(total);
      }
      |}
  in
  Alcotest.(check (list string)) "grid" [ "23"; "138" ] out

let test_plds () =
  let out =
    outputs
      {|
      struct node { int val; struct node *next; }
      void main() {
        struct node *head = null;
        int i;
        for (i = 0; i < 5; i = i + 1) {
          struct node *n = new struct node;
          n->val = i;
          n->next = head;
          head = n;
        }
        int total = 0;
        struct node *p = head;
        while (p) { total = total + p->val; p = p->next; }
        printi(total);  // 0+1+2+3+4
      }
      |}
  in
  Alcotest.(check (list string)) "list sum" [ "10" ] out

let test_functions_recursion () =
  let out =
    outputs
      {|
      int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
      }
      void main() { printi(fib(12)); }
      |}
  in
  Alcotest.(check (list string)) "fib" [ "144" ] out

let test_struct_values_in_arrays () =
  let out =
    outputs
      {|
      struct point { float x; float y; }
      struct point pts[4];
      void main() {
        int i;
        for (i = 0; i < 4; i = i + 1) {
          pts[i].x = itof(i);
          pts[i].y = itof(i * i);
        }
        print(pts[3].x + pts[3].y);  // 3 + 9
      }
      |}
  in
  Alcotest.(check (list string)) "aos" [ "12" ] out

let test_globals_and_calls () =
  let out =
    outputs
      {|
      int counter = 100;
      void bump(int by) { counter = counter + by; }
      void main() {
        bump(1);
        bump(2);
        printi(counter);
      }
      |}
  in
  Alcotest.(check (list string)) "globals" [ "103" ] out

let test_drand_deterministic () =
  let src = "void main() { dseed(42); print(drand()); print(drand()); }" in
  Alcotest.(check (list string)) "same seed, same stream" (outputs src) (outputs src)

let test_hrand_pure () =
  let out = outputs "void main() { print(hrand(7)); print(hrand(7)); print(hrand(8)); }" in
  match out with
  | [ a; b; c ] ->
      Alcotest.(check string) "pure" a b;
      Alcotest.(check bool) "distinct" true (a <> c)
  | _ -> Alcotest.fail "expected 3 outputs"

let test_reads_input () =
  let out = outputs ~input:[ 5; 7 ] "void main() { printi(reads() + reads()); printi(reads()); }" in
  Alcotest.(check (list string)) "input stream" [ "12"; "0" ] out

let test_trap_null () =
  let p = compile
      {|
      struct node { int val; struct node *next; }
      void main() { struct node *p = null; p->val = 1; }
      |}
  in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_trap_out_of_bounds () =
  let p = compile "int a[4]; void main() { int i = 9; a[i] = 1; }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_fuel () =
  let p = compile "void main() { while (1) { } }" in
  (* while(1) has an empty body: only the terminator executes, so give the
     loop something to burn. *)
  ignore p;
  let p = compile "int x; void main() { while (1) { x = x + 1; } }" in
  let ctx = Eval.create ~fuel:10_000 p in
  match Eval.run_main ctx with
  | exception Eval.Out_of_fuel -> ()
  | () -> Alcotest.fail "expected to run out of fuel"

let test_snapshot_restore () =
  let p =
    compile
      {|
      int g;
      int a[4];
      void main() { g = 1; a[0] = 10; }
      |}
  in
  let ctx = Eval.create p in
  Eval.run_main ctx;
  let st = Eval.store ctx in
  let snap = Store.snapshot st in
  (* mutate: globals and heap *)
  Store.write_global st 0 (Value.VInt 999);
  (match Store.read_global st 1 with
  | Value.VPtr (b, _) -> Store.store st ~block:b ~off:0 (Value.VInt 777)
  | _ -> Alcotest.fail "expected array global pointer");
  Store.restore st snap;
  Alcotest.(check bool) "global restored" true (Store.read_global st 0 = Value.VInt 1);
  (match Store.read_global st 1 with
  | Value.VPtr (b, _) ->
      Alcotest.(check bool) "heap restored" true (Store.load st ~block:b ~off:0 = Value.VInt 10)
  | _ -> Alcotest.fail "expected array global pointer")

(* Observable captures: isomorphic heaps must compare equal regardless of
   allocation order. *)
let test_observable_isomorphic () =
  let build order =
    let src =
      Printf.sprintf
        {|
        struct node { int val; struct node *next; }
        struct node *head;
        void main() {
          %s
        }
        |}
        order
    in
    let p = compile src in
    let ctx = Eval.create p in
    Eval.run_main ctx;
    let st = Eval.store ctx in
    Observable.capture st ~scalars:[] ~roots:[ Store.read_global st 0 ]
  in
  (* same final list 1 -> 2, built with different allocation orders *)
  let a =
    build
      {|
      struct node *n1 = new struct node;
      struct node *n2 = new struct node;
      n1->val = 1; n2->val = 2; n1->next = n2; n2->next = null; head = n1;
      |}
  in
  let b =
    build
      {|
      struct node *n2 = new struct node;
      struct node *dead = new struct node;
      struct node *n1 = new struct node;
      dead->val = 99;
      n1->val = 1; n2->val = 2; n1->next = n2; n2->next = null; head = n1;
      |}
  in
  Alcotest.(check bool) "isomorphic heaps equal" true (Observable.equal a b)

let test_observable_differs () =
  let capture_of src =
    let p = compile src in
    let ctx = Eval.create p in
    Eval.run_main ctx;
    let st = Eval.store ctx in
    Observable.capture st ~scalars:[] ~roots:[ Store.read_global st 0 ]
  in
  let a = capture_of "int a[3]; void main() { a[1] = 5; }" in
  let b = capture_of "int a[3]; void main() { a[1] = 6; }" in
  Alcotest.(check bool) "different states differ" false (Observable.equal a b)

let test_observable_float_tolerance () =
  let mk v =
    Observable.capture
      (Eval.store (Eval.create (compile "void main() { }")))
      ~scalars:[ Value.VFloat v ] ~roots:[]
  in
  Alcotest.(check bool) "close floats equal" true
    (Observable.equal (mk 1.0) (mk (1.0 +. 1e-13)));
  Alcotest.(check bool) "distant floats differ" false (Observable.equal (mk 1.0) (mk 1.1))

let test_outputs_equal_tolerant () =
  Alcotest.(check bool) "tolerant" true
    (Observable.outputs_equal [ "1.00000000000001"; "x" ] [ "1.0"; "x" ]);
  Alcotest.(check bool) "different text" false (Observable.outputs_equal [ "a" ] [ "b" ]);
  Alcotest.(check bool) "different lengths" false (Observable.outputs_equal [ "1" ] [ "1"; "2" ])

let suites =
  [
    ( "interp",
      [
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "float math" `Quick test_float_math;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "plds" `Quick test_plds;
        Alcotest.test_case "recursion" `Quick test_functions_recursion;
        Alcotest.test_case "struct arrays" `Quick test_struct_values_in_arrays;
        Alcotest.test_case "globals" `Quick test_globals_and_calls;
        Alcotest.test_case "drand deterministic" `Quick test_drand_deterministic;
        Alcotest.test_case "hrand pure" `Quick test_hrand_pure;
        Alcotest.test_case "reads input" `Quick test_reads_input;
        Alcotest.test_case "trap null" `Quick test_trap_null;
        Alcotest.test_case "trap oob" `Quick test_trap_out_of_bounds;
        Alcotest.test_case "fuel" `Quick test_fuel;
        Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
      ] );
    ( "observable",
      [
        Alcotest.test_case "isomorphic heaps" `Quick test_observable_isomorphic;
        Alcotest.test_case "state diff" `Quick test_observable_differs;
        Alcotest.test_case "float tolerance" `Quick test_observable_float_tolerance;
        Alcotest.test_case "outputs tolerant" `Quick test_outputs_equal_tolerant;
      ] );
  ]

(* ---------------------------------------------------------------- *)
(* Additional interpreter edge cases                                  *)
(* ---------------------------------------------------------------- *)

let test_deep_recursion () =
  let out =
    outputs
      {|
      int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
      void main() { printi(depth(500)); }
      |}
  in
  Alcotest.(check (list string)) "deep recursion" [ "500" ] out

let test_zero_length_alloc () =
  let out =
    outputs
      {|
      void main() {
        int *p = new int[0];
        if (p) { printi(1); } else { printi(0); }
      }
      |}
  in
  Alcotest.(check (list string)) "zero-length allocation yields a valid pointer" [ "1" ] out

let test_div_by_zero_traps () =
  let p = compile "void main() { int z = 0; printi(10 / z); }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_mod_by_zero_traps () =
  let p = compile "void main() { int z = 0; printi(10 % z); }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_uninitialized_use_traps () =
  let p = compile "void main() { int x; printi(x + 1); }" in
  let ctx = Eval.create p in
  (match Eval.run_main ctx with
  | exception Eval.Trap _ -> ()
  | () -> Alcotest.fail "expected a trap")

let test_negative_modulo_semantics () =
  (* OCaml's [mod] semantics: sign follows the dividend, like C *)
  let out = outputs "void main() { printi(-7 % 3); printi(7 % -3); }" in
  Alcotest.(check (list string)) "C-style remainder" [ "-1"; "1" ] out

let test_short_circuit_effects () =
  let out =
    outputs
      {|
      int calls;
      int noisy(int v) { calls = calls + 1; return v; }
      void main() {
        calls = 0;
        if (noisy(0) != 0 && noisy(1) != 0) { printi(99); }
        printi(calls);          // 1: the second operand must not run
        if (noisy(1) != 0 || noisy(1) != 0) { printi(7); }
        printi(calls);          // 2: short-circuit or
      }
      |}
  in
  Alcotest.(check (list string)) "short circuit" [ "1"; "7"; "2" ] out

let test_pointer_equality () =
  let out =
    outputs
      {|
      struct cell { int v; struct cell *next; }
      void main() {
        struct cell *a = new struct cell;
        struct cell *b = new struct cell;
        struct cell *c = a;
        if (a == c) { printi(1); } else { printi(0); }
        if (a == b) { printi(1); } else { printi(0); }
        if (a != null) { printi(1); } else { printi(0); }
      }
      |}
  in
  Alcotest.(check (list string)) "pointer identity" [ "1"; "0"; "1" ] out

let test_struct_value_copy_semantics () =
  (* struct values live in place; assignments go field by field *)
  let out =
    outputs
      {|
      struct pt { float x; float y; }
      struct pt grid[2];
      void main() {
        grid[0].x = 1.0;
        grid[1].x = grid[0].x + 1.0;
        grid[0].x = 9.0;
        print(grid[1].x);   // copied before the overwrite
      }
      |}
  in
  Alcotest.(check (list string)) "field copies" [ "2" ] out

let test_steps_counter_monotone () =
  let p = compile "void main() { int i; int s = 0; for (i = 0; i < 50; i = i + 1) { s = s + i; } printi(s); }" in
  let ctx = Eval.create p in
  Eval.run_main ctx;
  let small = Eval.steps ctx in
  let p2 = compile "void main() { int i; int s = 0; for (i = 0; i < 500; i = i + 1) { s = s + i; } printi(s); }" in
  let ctx2 = Eval.create p2 in
  Eval.run_main ctx2;
  Alcotest.(check bool) "10x iterations cost more" true (Eval.steps ctx2 > small * 5)

let extra_suites =
  [
    ( "interp-edge",
      [
        Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
        Alcotest.test_case "zero-length alloc" `Quick test_zero_length_alloc;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero_traps;
        Alcotest.test_case "mod by zero" `Quick test_mod_by_zero_traps;
        Alcotest.test_case "uninitialized use" `Quick test_uninitialized_use_traps;
        Alcotest.test_case "negative modulo" `Quick test_negative_modulo_semantics;
        Alcotest.test_case "short circuit effects" `Quick test_short_circuit_effects;
        Alcotest.test_case "pointer equality" `Quick test_pointer_equality;
        Alcotest.test_case "struct field copies" `Quick test_struct_value_copy_semantics;
        Alcotest.test_case "steps monotone" `Quick test_steps_counter_monotone;
      ] );
  ]

let suites = suites @ extra_suites
