lib/baselines/depprofiling_tool.ml: Dca_analysis Dca_support Dynamic_common Intset List Loops Memred Proginfo Scalars Tool
