lib/interp/store.ml: Array Dca_ir Int64 Ir List Printf Value
