lib/support/listx.ml: Float Hashtbl List
