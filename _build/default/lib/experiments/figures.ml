open Dca_parallel
open Dca_progs

let geomean = function
  | [] -> 1.0
  | xs ->
      let logsum = List.fold_left (fun acc x -> acc +. log (Float.max 1e-9 x)) 0.0 xs in
      exp (logsum /. float_of_int (List.length xs))

let machine = Evaluation.machine

let speedup_of_plan ev plan =
  (Speedup.simulate ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile plan).Speedup.sp_speedup

(* DCA's selection for the NPB figures: profitability analysis is outside
   DCA's scope, so — like the paper (§V-C2) — the commutative loops that
   the expert implementation deems profitable are selected. *)
let dca_plan_for ev =
  let commutative = Evaluation.dca_commutative ev in
  let expert = Evaluation.expert_loop_ids ev in
  let pool = if expert = [] then commutative else List.filter (fun id -> List.mem id expert) commutative in
  Planner.select ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile ~detected:commutative
    ~strategy:(Planner.Among pool)

(* ------------------------------------------------------------------ *)
(* Fig. 5: PLDS speedups under DCA parallelization                      *)
(* ------------------------------------------------------------------ *)

type fig5_row = { f5_name : string; f5_speedup : float; f5_plan : Plan.t; f5_paper : float option }

let fig5 () =
  List.map
    (fun name ->
      let bm = Registry.find_exn name in
      let ev = Evaluation.evaluate_cached bm in
      let plan =
        Planner.select ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile
          ~detected:(Evaluation.dca_commutative ev) ~strategy:Planner.Best_benefit
      in
      {
        f5_name = name;
        f5_speedup = speedup_of_plan ev plan;
        f5_plan = plan;
        f5_paper = (Paper_data.plds_row name).Paper_data.q_fig5;
      })
    Paper_data.fig5_programs

let render_fig5 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Fig. 5: overall speedup of DCA parallelization for PLDS programs (72-worker model)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %6.1fx   (paper bar: %s)\n" r.f5_name r.f5_speedup
           (match r.f5_paper with Some f -> Printf.sprintf "~%.1fx" f | None -> "n/a")))
    rows;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fig. 6: NPB speedups, static tools vs DCA                            *)
(* ------------------------------------------------------------------ *)

type fig6_row = {
  f6_name : string;
  f6_idioms : float;
  f6_polly : float;
  f6_icc : float;
  f6_dca : float;
  f6_paper_dca : float;
}

let tool_speedup ev tool_name =
  let detected = Evaluation.tool_parallel ev tool_name in
  let plan =
    Planner.select ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile ~detected
      ~strategy:Planner.Best_benefit
  in
  speedup_of_plan ev plan

let fig6 () =
  List.map
    (fun bm ->
      let ev = Evaluation.evaluate_cached bm in
      let name = bm.Benchmark.bm_name in
      {
        f6_name = name;
        f6_idioms = tool_speedup ev "Idioms";
        f6_polly = tool_speedup ev "Polly";
        f6_icc = tool_speedup ev "ICC";
        f6_dca = speedup_of_plan ev (dca_plan_for ev);
        f6_paper_dca = (Paper_data.npb_row name).Paper_data.p_dca_speedup;
      })
    Registry.npb

let render_fig6 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Fig. 6: overall NPB speedup by Idioms, Polly, ICC and DCA (72-worker model)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-6s %7s %7s %7s %7s   | paper DCA\n" "Bench" "Idioms" "Polly" "ICC" "DCA");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-6s %6.1fx %6.1fx %6.1fx %6.1fx   | %6.1fx\n" r.f6_name r.f6_idioms
           r.f6_polly r.f6_icc r.f6_dca r.f6_paper_dca))
    rows;
  let gm sel = geomean (List.map sel rows) in
  Buffer.add_string buf
    (Printf.sprintf "  %-6s %6.1fx %6.1fx %6.1fx %6.1fx   | %6.1fx (paper GMean 3.6x)\n" "GMean"
       (gm (fun r -> r.f6_idioms))
       (gm (fun r -> r.f6_polly))
       (gm (fun r -> r.f6_icc))
       (gm (fun r -> r.f6_dca))
       (geomean (List.map (fun r -> r.f6_paper_dca) rows)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fig. 7: DCA vs expert parallelization                                *)
(* ------------------------------------------------------------------ *)

type fig7_row = {
  f7_name : string;
  f7_dca : float;
  f7_expert_loop : float;
  f7_expert_full : float;
  f7_paper_dca : float;
  f7_paper_expert_loop : float;
  f7_paper_expert_full : float;
}

let expert_loop_plan ev =
  let expert = Evaluation.expert_loop_ids ev in
  Planner.select ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile ~detected:expert
    ~strategy:Planner.Best_benefit

(* Whole-program expert parallelization: the loop plan with parallel
   sections fused (shared launches) plus the expert's restructuring of a
   fraction of the remaining serial time (DESIGN.md §2). *)
let expert_full_speedup bm ev =
  let base = expert_loop_plan ev in
  let sections =
    List.mapi (fun i refs -> (i, Benchmark.resolve ev.Evaluation.ev_info refs)) bm.Benchmark.bm_expert_sections
  in
  let with_groups =
    {
      Plan.plan_loops =
        List.map
          (fun lp ->
            let group =
              List.find_map
                (fun (i, ids) -> if List.mem lp.Plan.lp_loop_id ids then Some i else None)
                sections
            in
            { lp with Plan.lp_fused_group = group })
          base.Plan.plan_loops;
    }
  in
  let result =
    Speedup.simulate
      ~extra_parallel:(bm.Benchmark.bm_expert_extra, bm.Benchmark.bm_expert_workers)
      ~machine ev.Evaluation.ev_info ev.Evaluation.ev_profile with_groups
  in
  result.Speedup.sp_speedup

let fig7 () =
  List.map
    (fun bm ->
      let ev = Evaluation.evaluate_cached bm in
      let name = bm.Benchmark.bm_name in
      let p = Paper_data.npb_row name in
      {
        f7_name = name;
        f7_dca = speedup_of_plan ev (dca_plan_for ev);
        f7_expert_loop = speedup_of_plan ev (expert_loop_plan ev);
        f7_expert_full = expert_full_speedup bm ev;
        f7_paper_dca = p.Paper_data.p_dca_speedup;
        f7_paper_expert_loop = p.Paper_data.p_expert_loop_speedup;
        f7_paper_expert_full = p.Paper_data.p_expert_full_speedup;
      })
    Registry.npb

let render_fig7 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Fig. 7: NPB speedup, DCA vs expert loop-only vs expert whole-program (72-worker model)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-6s %7s %12s %12s   | paper: %6s %12s %12s\n" "Bench" "DCA" "Expert(loop)"
       "Expert(full)" "DCA" "Expert(loop)" "Expert(full)");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-6s %6.1fx %11.1fx %11.1fx   |        %5.1fx %11.1fx %11.1fx\n"
           r.f7_name r.f7_dca r.f7_expert_loop r.f7_expert_full r.f7_paper_dca
           r.f7_paper_expert_loop r.f7_paper_expert_full))
    rows;
  let gm sel = geomean (List.map sel rows) in
  Buffer.add_string buf
    (Printf.sprintf "  %-6s %6.1fx %11.1fx %11.1fx\n" "GMean" (gm (fun r -> r.f7_dca))
       (gm (fun r -> r.f7_expert_loop))
       (gm (fun r -> r.f7_expert_full)));
  Buffer.contents buf
