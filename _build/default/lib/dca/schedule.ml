open Dca_support

type t = Identity | Reverse | Rotate | Shuffle of int

let apply t n =
  match t with
  | Identity -> Array.init n (fun i -> i)
  | Reverse -> Array.init n (fun i -> n - 1 - i)
  | Rotate ->
      let half = (n + 1) / 2 in
      Array.init n (fun i -> (i + half) mod n)
  | Shuffle seed ->
      let prng = Prng.create (seed * 0x9E3779B9) in
      Prng.permutation prng n

let presets ?(shuffles = 3) ?(seed = 2021) () =
  [ Reverse; Rotate ] @ List.init shuffles (fun k -> Shuffle (seed + k))

let to_string = function
  | Identity -> "identity"
  | Reverse -> "reverse"
  | Rotate -> "rotate-half"
  | Shuffle seed -> Printf.sprintf "shuffle(%d)" seed
