(** Pretty-printer for the untyped AST.  The output is valid MiniC, which
    the property tests re-parse to check a print/parse round trip. *)

open Ast

let buf_add = Buffer.add_string

let rec pp_expr buf e =
  match e.edesc with
  | Eint n -> if n < 0 then buf_add buf (Printf.sprintf "(%d)" n) else buf_add buf (string_of_int n)
  | Efloat f ->
      let s = Printf.sprintf "%.17g" f in
      let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
      if f < 0.0 then buf_add buf (Printf.sprintf "(%s)" s) else buf_add buf s
  | Enull -> buf_add buf "null"
  | Evar name -> buf_add buf name
  | Eunop (Neg, sub) ->
      buf_add buf "(-";
      pp_expr buf sub;
      buf_add buf ")"
  | Eunop (Not, sub) ->
      buf_add buf "(!";
      pp_expr buf sub;
      buf_add buf ")"
  | Ebinop (op, l, r) ->
      buf_add buf "(";
      pp_expr buf l;
      buf_add buf (" " ^ binop_to_string op ^ " ");
      pp_expr buf r;
      buf_add buf ")"
  | Eindex (base, idx) ->
      pp_expr buf base;
      buf_add buf "[";
      pp_expr buf idx;
      buf_add buf "]"
  | Efield (base, f) ->
      pp_expr buf base;
      buf_add buf ("." ^ f)
  | Earrow (base, f) ->
      pp_expr buf base;
      buf_add buf ("->" ^ f)
  | Ecall (name, args) ->
      buf_add buf (name ^ "(");
      List.iteri
        (fun i a ->
          if i > 0 then buf_add buf ", ";
          pp_expr buf a)
        args;
      buf_add buf ")"
  | Enew_struct s -> buf_add buf ("new struct " ^ s)
  | Enew_array (ty, count) ->
      buf_add buf ("new " ^ ty_to_string ty ^ "[");
      pp_expr buf count;
      buf_add buf "]"

let indent buf depth = buf_add buf (String.make (2 * depth) ' ')

let pp_decl_ty buf ty name =
  match ty with
  | Tarray (elem, dims) ->
      buf_add buf (ty_to_string elem ^ " " ^ name);
      List.iter (fun d -> buf_add buf (Printf.sprintf "[%d]" d)) dims
  | _ -> buf_add buf (ty_to_string ty ^ " " ^ name)

let rec pp_stmt buf depth s =
  match s.sdesc with
  | Sdecl (ty, name, init) ->
      indent buf depth;
      pp_decl_ty buf ty name;
      (match init with
      | None -> ()
      | Some e ->
          buf_add buf " = ";
          pp_expr buf e);
      buf_add buf ";\n"
  | Sassign (lhs, rhs) ->
      indent buf depth;
      pp_expr buf lhs;
      buf_add buf " = ";
      pp_expr buf rhs;
      buf_add buf ";\n"
  | Sif (cond, then_b, else_b) ->
      indent buf depth;
      buf_add buf "if (";
      pp_expr buf cond;
      buf_add buf ") {\n";
      List.iter (pp_stmt buf (depth + 1)) then_b;
      indent buf depth;
      buf_add buf "}";
      if else_b <> [] then begin
        buf_add buf " else {\n";
        List.iter (pp_stmt buf (depth + 1)) else_b;
        indent buf depth;
        buf_add buf "}"
      end;
      buf_add buf "\n"
  | Swhile (cond, body) ->
      indent buf depth;
      buf_add buf "while (";
      pp_expr buf cond;
      buf_add buf ") {\n";
      List.iter (pp_stmt buf (depth + 1)) body;
      indent buf depth;
      buf_add buf "}\n"
  | Sfor (init, cond, step, body) ->
      indent buf depth;
      buf_add buf "for (";
      (match init with
      | None -> ()
      | Some s0 -> pp_inline_stmt buf s0);
      buf_add buf "; ";
      (match cond with None -> () | Some e -> pp_expr buf e);
      buf_add buf "; ";
      (match step with None -> () | Some s0 -> pp_inline_stmt buf s0);
      buf_add buf ") {\n";
      List.iter (pp_stmt buf (depth + 1)) body;
      indent buf depth;
      buf_add buf "}\n"
  | Sreturn None ->
      indent buf depth;
      buf_add buf "return;\n"
  | Sreturn (Some e) ->
      indent buf depth;
      buf_add buf "return ";
      pp_expr buf e;
      buf_add buf ";\n"
  | Sexpr e ->
      indent buf depth;
      pp_expr buf e;
      buf_add buf ";\n"
  | Sprints text ->
      indent buf depth;
      buf_add buf (Printf.sprintf "prints(%S);\n" text)
  | Sbreak ->
      indent buf depth;
      buf_add buf "break;\n"
  | Scontinue ->
      indent buf depth;
      buf_add buf "continue;\n"
  | Sblock body ->
      indent buf depth;
      buf_add buf "{\n";
      List.iter (pp_stmt buf (depth + 1)) body;
      indent buf depth;
      buf_add buf "}\n"

(* Statement without indentation or trailing newline/semicolon: the init and
   step slots of a [for] header. *)
and pp_inline_stmt buf s =
  match s.sdesc with
  | Sdecl (ty, name, init) ->
      pp_decl_ty buf ty name;
      (match init with
      | None -> ()
      | Some e ->
          buf_add buf " = ";
          pp_expr buf e)
  | Sassign (lhs, rhs) ->
      pp_expr buf lhs;
      buf_add buf " = ";
      pp_expr buf rhs
  | Sexpr e -> pp_expr buf e
  | _ -> buf_add buf "/* unsupported inline statement */"

let pp_struct buf (s : struct_def) =
  buf_add buf (Printf.sprintf "struct %s {\n" s.str_name);
  List.iter
    (fun (ty, name) ->
      indent buf 1;
      buf_add buf (ty_to_string ty ^ " " ^ name ^ ";\n"))
    s.str_fields;
  buf_add buf "}\n\n"

let pp_global buf (g : global_def) =
  pp_decl_ty buf g.g_ty g.g_name;
  (match g.g_init with
  | None -> ()
  | Some e ->
      buf_add buf " = ";
      pp_expr buf e);
  buf_add buf ";\n"

let pp_func buf (f : func_def) =
  buf_add buf (ty_to_string f.f_ret ^ " " ^ f.f_name ^ "(");
  List.iteri
    (fun i (ty, name) ->
      if i > 0 then buf_add buf ", ";
      buf_add buf (ty_to_string ty ^ " " ^ name))
    f.f_params;
  buf_add buf ") {\n";
  List.iter (pp_stmt buf 1) f.f_body;
  buf_add buf "}\n\n"

let program_to_string (p : program) =
  let buf = Buffer.create 1024 in
  List.iter (pp_struct buf) p.structs;
  List.iter (pp_global buf) p.globals;
  if p.globals <> [] then buf_add buf "\n";
  List.iter (pp_func buf) p.funcs;
  Buffer.contents buf

let expr_to_string e =
  let buf = Buffer.create 64 in
  pp_expr buf e;
  Buffer.contents buf
