(* dca — command-line front end of the Dynamic Commutativity Analysis
   reproduction.

     dca list                      enumerate built-in benchmark programs
     dca run <prog>                execute a MiniC program
     dca ir <prog>                 dump the lowered IR
     dca analyze <prog>            DCA verdict for every loop
     dca tools <prog>              compare the five baseline detectors
     dca speedup <prog>            plan + simulated multicore speedup

   <prog> is a path to a .mc file or the name of a built-in benchmark.

   Every analysis command goes through Dca_core.Session: one memoized
   pipeline (ir → proginfo → profile → dca_results → plan) and one worker
   pool, selected with --jobs (or the DCA_JOBS environment variable). *)

open Cmdliner
module Session = Dca_core.Session
module Telemetry = Dca_support.Telemetry
module Faultpoint = Dca_support.Faultpoint

(* The flags shared by every command: pool width, telemetry sinks, fault
   plan, per-invocation resource budgets.  One record, one cmdliner term
   ([common_term] below), consumed everywhere — a flag added here reaches
   analyze, batch, fuzz, serve and client alike. *)
type common = {
  co_jobs : int option;
  co_trace : string option;
  co_stats : bool;
  co_faults : string option;
  co_deadline_ms : int option;
  co_heap_words : int option;
  co_no_static : bool;
}

(* Side effects of the common flags: arm telemetry and the fault plan.
   [--faults] replaces whatever DCA_FAULTS would have armed; a malformed
   plan raises Faultpoint.Bad_plan, mapped to a usage error at top
   level.  [--trace]/[--stats] layer over DCA_TRACE / DCA_STATS. *)
let apply_common co =
  Telemetry.init_from_env ();
  (match co.co_faults with Some plan -> Faultpoint.arm_string plan | None -> ());
  match (co.co_trace, co.co_stats) with
  | None, false -> ()
  | trace, stats ->
      let cur = Telemetry.config () in
      let is_jsonl f = Filename.check_suffix f ".jsonl" in
      Telemetry.configure
        {
          Telemetry.cfg_trace =
            (match trace with Some f when not (is_jsonl f) -> Some f | _ -> cur.Telemetry.cfg_trace);
          cfg_jsonl = (match trace with Some f when is_jsonl f -> Some f | _ -> cur.Telemetry.cfg_jsonl);
          cfg_stats = stats || cur.Telemetry.cfg_stats;
        }

(* Fold the session-relevant common flags into an Options value. *)
let options_of_common ?(base = Session.Options.default) co =
  let set v f o = match v with None -> o | Some v -> f v o in
  base
  |> set co.co_jobs Session.Options.with_jobs
  |> set co.co_deadline_ms Session.Options.with_deadline_ms
  |> set co.co_heap_words Session.Options.with_heap_words
  |> Session.Options.with_static (not co.co_no_static)

(* Open a session for PROG and run [f] on it, mapping the standard failure
   modes to exit codes.  The telemetry sinks are flushed on every exit
   path so a trace survives a trap. *)
let with_session ?(options = Session.Options.default) common prog f =
  apply_common common;
  let options = options_of_common ~base:options common in
  match Session.load ~options prog with
  | Error msg ->
      Printf.eprintf "dca: %s\n" msg;
      1
  | Ok s ->
      Fun.protect
        ~finally:(fun () ->
          Session.close s;
          Telemetry.flush ())
        (fun () ->
          match f s with
          | () -> 0
          | exception Dca_frontend.Loc.Error (loc, msg) ->
              Printf.eprintf "dca: %s: %s\n" (Dca_frontend.Loc.to_string loc) msg;
              1
          | exception Dca_interp.Eval.Trap msg ->
              Printf.eprintf "dca: runtime trap: %s\n" msg;
              1
          | exception Dca_interp.Eval.Out_of_fuel ->
              Printf.eprintf "dca: execution exceeded the fuel bound\n";
              1
          | exception Dca_interp.Eval.Deadline_exceeded ->
              Printf.eprintf "dca: execution exceeded the wall-clock deadline\n";
              1
          | exception Dca_interp.Eval.Heap_exhausted ->
              Printf.eprintf "dca: execution exceeded the heap budget\n";
              1)

let prog_arg =
  let doc = "Program: a .mc source file or a built-in benchmark name (see $(b,dca list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROG" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the dynamic stage.  Defaults to $(b,DCA_JOBS) if set, otherwise the \
     recommended domain count.  Results are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write an execution trace to $(docv): Chrome trace-event JSON (load in Perfetto or \
     about://tracing), or a JSONL event stream if $(docv) ends in $(b,.jsonl)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the telemetry counter table to stderr on exit: deterministic work counters \
           (identical for every $(b,--jobs) value) and diagnostic counters.")

let faults_arg =
  let doc =
    "Deterministic fault plan, e.g. $(b,driver.loop[main:3(d1)]@1=raise; eval.step@100+=delay:2).  \
     Entries are $(i,site[ctx]@N=action) with action one of $(b,raise), $(b,trap), $(b,fuel), \
     $(b,delay:MS); $(b,@N+) fires from the Nth hit on.  Also honored from $(b,DCA_FAULTS) \
     (this flag wins).  Injected failures are contained per loop and reported as \
     $(b,aborted) verdicts."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PLAN" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock budget in milliseconds for each dynamic-stage invocation; exceeding it aborts \
     that loop's test (with one 4x-escalated retry), not the session."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let heap_arg =
  let doc =
    "Major-heap growth budget in words for each dynamic-stage invocation; exceeding it aborts \
     that loop's test, not the session."
  in
  Arg.(value & opt (some int) None & info [ "heap-words" ] ~docv:"W" ~doc)

let no_static_arg =
  Arg.(
    value & flag
    & info [ "no-static" ]
        ~doc:
          "Disable the static commutativity fast-path: every accepted loop goes through the \
           golden run and replays even when the affine prover could discharge it.  Verdicts and \
           plans are identical either way; use for A/B comparisons of $(b,dca.golden-runs) / \
           $(b,dca.replays) work.")

let common_term =
  let mk co_jobs co_trace co_stats co_faults co_deadline_ms co_heap_words co_no_static =
    { co_jobs; co_trace; co_stats; co_faults; co_deadline_ms; co_heap_words; co_no_static }
  in
  Term.(
    const mk $ jobs_arg $ trace_arg $ stats_arg $ faults_arg $ deadline_arg $ heap_arg
    $ no_static_arg)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %-5s %s\n" "name" "suite" "description";
    List.iter
      (fun bm ->
        Printf.printf "%-14s %-5s %s\n" bm.Dca_progs.Benchmark.bm_name
          (match bm.Dca_progs.Benchmark.bm_suite with
          | Dca_progs.Benchmark.Npb -> "NPB"
          | Dca_progs.Benchmark.Plds -> "PLDS")
          bm.Dca_progs.Benchmark.bm_description)
      Dca_progs.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark programs")
    Term.(const run $ const ())

let run_cmd =
  let run prog common =
    with_session common prog (fun s ->
        let ctx = Dca_interp.Eval.create ~input:(Session.input s) (Session.ir s) in
        Dca_interp.Eval.run_main ctx;
        List.iter print_endline (Dca_interp.Eval.outputs ctx);
        Printf.printf "(%d instructions executed)\n" (Dca_interp.Eval.steps ctx))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a MiniC program on the interpreter")
    Term.(const run $ prog_arg $ common_term)

let ir_cmd =
  let run prog common =
    with_session common prog (fun s ->
        print_string (Dca_ir.Ir_printer.program_to_string (Session.ir s)))
  in
  Cmd.v (Cmd.info "ir" ~doc:"Dump the lowered intermediate representation")
    Term.(const run $ prog_arg $ common_term)

let shuffles_arg =
  Arg.(value & opt int 3 & info [ "shuffles" ] ~docv:"N" ~doc:"Number of random shuffles to test.")

let no_escalate_arg =
  Arg.(
    value & flag
    & info [ "no-escalate" ]
        ~doc:"Disable whole-program verification; strict live-out digests only.")

let hierarchical_arg =
  Arg.(
    value & flag
    & info [ "hierarchical" ]
        ~doc:
          "Explore loops top-down: skip (as subsumed) loops nested inside a loop already found \
           commutative.")

let analyze_cmd =
  let run prog shuffles no_escalate hierarchical common =
    let config =
      {
        Dca_core.Commutativity.default_config with
        Dca_core.Commutativity.cc_schedules = Dca_core.Schedule.presets ~shuffles ();
        cc_escalate = not no_escalate;
      }
    in
    let options =
      Session.Options.(default |> with_config config |> with_hierarchical hierarchical)
    in
    with_session ~options common prog (fun s -> print_string (Session.report s))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run Dynamic Commutativity Analysis on every loop of the program")
    Term.(
      const run $ prog_arg $ shuffles_arg $ no_escalate_arg $ hierarchical_arg $ common_term)

let tools_cmd =
  let run prog common =
    with_session common prog (fun s ->
        let info = Session.proginfo s in
        let profile = Session.profile s in
        let dca = Session.dca_results s in
        let tool_results =
          List.map
            (fun tool ->
              (tool.Dca_baselines.Tool.tool_name, tool.Dca_baselines.Tool.tool_analyze info (Some profile)))
            Dca_baselines.Registry.all
        in
        Printf.printf "%-26s %s\n" "loop"
          (String.concat " "
             (List.map (fun (n, _) -> Printf.sprintf "%-9s" n) tool_results @ [ "DCA" ]));
        List.iter
          (fun (r : Dca_core.Driver.loop_result) ->
            let id = r.Dca_core.Driver.lr_loop.Dca_analysis.Loops.l_id in
            let marks =
              List.map
                (fun (_, results) ->
                  if List.mem id (Dca_baselines.Tool.parallel_ids results) then
                    Printf.sprintf "%-9s" "yes"
                  else Printf.sprintf "%-9s" ".")
                tool_results
            in
            Printf.printf "%-26s %s %s\n" r.Dca_core.Driver.lr_label (String.concat " " marks)
              (if Dca_core.Driver.is_commutative r then "yes" else "."))
          dca)
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"Compare the five baseline detectors and DCA, loop by loop")
    Term.(const run $ prog_arg $ common_term)

let workers_arg =
  Arg.(value & opt int 72 & info [ "workers" ] ~docv:"P" ~doc:"Simulated worker count.")

let speedup_cmd =
  let run prog workers common =
    with_session common prog (fun s ->
        let machine = Dca_parallel.Machine.with_workers Dca_parallel.Machine.default workers in
        let plan = Session.plan ~machine s in
        let result = Dca_parallel.Speedup.simulate ~machine (Session.proginfo s) (Session.profile s) plan in
        Printf.printf "parallel plan:\n%s\n" (Dca_parallel.Plan.to_string plan);
        List.iter
          (fun sl ->
            Printf.printf "  %-24s seq %12.0f  par %12.0f  saved %12.0f\n"
              sl.Dca_parallel.Speedup.ls_loop_id sl.Dca_parallel.Speedup.ls_seq_cost
              sl.Dca_parallel.Speedup.ls_par_cost sl.Dca_parallel.Speedup.ls_saved)
          result.Dca_parallel.Speedup.sp_loops;
        Printf.printf "sequential work: %.0f\nsimulated parallel time (%d workers): %.0f\nspeedup: %.2fx\n"
          result.Dca_parallel.Speedup.sp_seq workers result.Dca_parallel.Speedup.sp_par
          result.Dca_parallel.Speedup.sp_speedup)
  in
  Cmd.v
    (Cmd.info "speedup"
       ~doc:"Parallelize the DCA-commutative loops and report the simulated speedup")
    Term.(const run $ prog_arg $ workers_arg $ common_term)

let advise_cmd =
  let run prog common =
    with_session common prog (fun s ->
        print_string (Dca_core.Advisor.report (Session.advise s)))
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Full parallelism advisory: per loop, whether to parallelize (and with which OpenMP \
          clauses), leave serial, or keep sequential — with the evidence")
    Term.(const run $ prog_arg $ common_term)

let annotate_cmd =
  let run prog common =
    with_session common prog (fun s ->
        print_string
          (Dca_parallel.Codegen.annotate_source (Session.proginfo s) ~source:(Session.source s)
             (Session.plan s)))
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Emit the source with OpenMP-style pragmas inserted above every loop DCA parallelizes")
    Term.(const run $ prog_arg $ common_term)

let export_c_cmd =
  let run prog common =
    with_session common prog (fun s ->
        let info = Session.proginfo s in
        let plan = Session.plan s in
        let ast = Dca_frontend.Parser.parse_program ~file:(Session.file s) (Session.source s) in
        let pragmas =
          List.filter_map
            (fun lp ->
              match Dca_analysis.Proginfo.loop_by_id info lp.Dca_parallel.Plan.lp_loop_id with
              | Some (_, loop) ->
                  let line = loop.Dca_analysis.Loops.l_loc.Dca_frontend.Loc.line in
                  (* block-scoped declarations are automatically private in C *)
                  let inner = Dca_frontend.C_export.body_declared_names ast ~line in
                  let privates =
                    List.filter (fun n -> not (List.mem n inner)) lp.Dca_parallel.Plan.lp_private
                  in
                  let priv =
                    match privates with
                    | [] -> ""
                    | l -> " private(" ^ String.concat ", " l ^ ")"
                  in
                  let reds =
                    String.concat ""
                      (List.map
                         (fun (name, op) ->
                           Printf.sprintf " reduction(%s:%s)"
                             (Dca_analysis.Scalars.reduction_op_to_string op)
                             name)
                         lp.Dca_parallel.Plan.lp_reductions)
                  in
                  Some (line, Printf.sprintf "#pragma omp parallel for schedule(static)%s%s" priv reds)
              | None -> None)
            plan.Dca_parallel.Plan.plan_loops
        in
        print_string
          (Dca_frontend.C_export.export_source ~pragmas ~file:(Session.file s) (Session.source s)))
  in
  Cmd.v
    (Cmd.info "export-c"
       ~doc:
         "Export the program as compilable C99 with real OpenMP pragmas on every loop DCA \
          parallelizes (build with: cc -fopenmp prog.c -lm)")
    Term.(const run $ prog_arg $ common_term)

(* ------------------------------------------------------------------ *)

(* dca batch: sweep a directory of .mc files (and/or the registry) and
   keep going — one program's failure must never abort the sweep.  Exit
   0 iff no program crashed: a crash is an exception the per-loop
   containment did not absorb, or a loop-level Aborted verdict whose
   cause is a Crash.  Without --keep-going the sweep stops at the first
   non-ok program and exits 1. *)
let batch_cmd =
  let dir_arg =
    let doc = "Directory to sweep: every $(b,*.mc) file, in name order." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let registry_arg =
    Arg.(
      value & flag
      & info [ "registry" ]
          ~doc:"Also analyze every built-in benchmark (the default when no DIR is given).")
  in
  let keep_going_arg =
    Arg.(
      value & flag
      & info [ "keep-going"; "k" ]
          ~doc:
            "Analyze every program even after failures; the exit code then reflects only whether \
             any program $(i,crashed).")
  in
  let run dir registry keep_going common =
    apply_common common;
    let options = options_of_common common in
    let dir_programs =
      match dir with
      | None -> Ok []
      | Some d ->
          if Sys.file_exists d && Sys.is_directory d then
            Ok
              (Sys.readdir d |> Array.to_list
              |> List.filter (fun f -> Filename.check_suffix f ".mc")
              |> List.sort compare
              |> List.map (Filename.concat d))
          else Error (Printf.sprintf "'%s' is not a directory" (Option.value dir ~default:""))
    in
    let code =
      match dir_programs with
    | Error msg ->
        Printf.eprintf "dca batch: %s\n" msg;
        2
    | Ok from_dir -> (
        let programs =
          (if registry || dir = None then
             List.map (fun bm -> bm.Dca_progs.Benchmark.bm_name) Dca_progs.Registry.all
           else [])
          @ from_dir
        in
        match programs with
        | [] ->
            Printf.eprintf "dca batch: nothing to analyze\n";
            2
        | programs ->
            let module Driver = Dca_core.Driver in
            let analyze_one prog =
              (* re-zero the plan's hit counters so a one-shot fault
                 applies to every program independently *)
              Faultpoint.reset_hits ();
              match Session.load ~options prog with
              | Error msg -> `Error msg
              | Ok s -> (
                  Fun.protect
                    ~finally:(fun () -> Session.close s)
                    (fun () ->
                      match Session.dca_results s with
                      | results ->
                          let count p = List.length (List.filter p results) in
                          let contained =
                            count (fun (r : Driver.loop_result) ->
                                match r.Driver.lr_decision with
                                | Driver.Aborted { ab_cause = Driver.Crash _; _ } -> true
                                | _ -> false)
                          in
                          let aborted =
                            count (fun (r : Driver.loop_result) ->
                                match r.Driver.lr_decision with
                                | Driver.Aborted _ -> true
                                | _ -> false)
                          in
                          `Done
                            ( List.length results,
                              count Driver.is_commutative,
                              aborted,
                              contained )
                      | exception Dca_frontend.Loc.Error (loc, msg) ->
                          `Error (Dca_frontend.Loc.to_string loc ^ ": " ^ msg)
                      | exception Dca_interp.Eval.Trap msg -> `Error ("runtime trap: " ^ msg)
                      | exception Dca_interp.Eval.Out_of_fuel -> `Error "fuel bound exceeded"
                      | exception Dca_interp.Eval.Deadline_exceeded ->
                          `Error "wall-clock deadline exceeded"
                      | exception Dca_interp.Eval.Heap_exhausted -> `Error "heap budget exhausted"
                      | exception e -> `Crash (Printexc.to_string e)))
            in
            Printf.printf "%-36s %6s %6s %6s  %s\n" "program" "loops" "comm" "abrt" "status";
            let ok = ref 0 and errors = ref 0 and crashed = ref 0 in
            let stopped = ref false in
            List.iter
              (fun prog ->
                if not !stopped then begin
                  let row status = Printf.printf "%-36s %s\n" prog status in
                  let failed =
                    match analyze_one prog with
                    | `Done (loops, comm, abrt, contained) ->
                        Printf.printf "%-36s %6d %6d %6d  %s\n" prog loops comm abrt
                          (if contained > 0 then
                             Printf.sprintf "contained-crash(%d)" contained
                           else "ok");
                        if contained > 0 then incr crashed else incr ok;
                        contained > 0
                    | `Error msg ->
                        row ("error: " ^ msg);
                        incr errors;
                        true
                    | `Crash msg ->
                        row ("CRASH: " ^ msg);
                        incr crashed;
                        true
                  in
                  if failed && not keep_going then stopped := true
                end)
              programs;
            Printf.printf "batch: %d program(s): %d ok, %d error(s), %d crashed%s\n"
              (!ok + !errors + !crashed) !ok !errors !crashed
              (if !stopped then " (stopped at first failure; use --keep-going)" else "");
            if !crashed > 0 then 1 else if !stopped then 1 else 0)
    in
    Telemetry.flush ();
    code
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze every .mc program of a directory (and/or every built-in benchmark) with per-loop \
          crash containment; exit 0 only if no program crashed")
    Term.(const run $ dir_arg $ registry_arg $ keep_going_arg $ common_term)

(* Exit-code contract: 0 = clean run, 1 = soundness violation found,
   2 = usage error.  cmdliner reports its own parse failures as 124, so
   flag-value validation that must yield 2 happens here. *)
let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed for the program stream.")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let max_iters_arg =
    Arg.(
      value & opt int 4
      & info [ "max-iters" ] ~docv:"N"
          ~doc:
            "Largest trip count of the loop under test (2-7; the oracle runs all $(i,N)! \
             iteration orders).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Write shrunk counterexamples to $(docv) as .mc files.")
  in
  let no_metamorphic_arg =
    Arg.(
      value & flag
      & info [ "no-metamorphic" ]
          ~doc:
            "Skip the metamorphic invariants (report equality across --jobs 1/4 and checkpoint \
             modes); roughly 4x faster.")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report counterexamples without minimizing them.")
  in
  let fault_mode_arg =
    Arg.(
      value & flag
      & info [ "fault-mode" ]
          ~doc:
            "For every loop of every generated program, re-run the session with an injected \
             one-shot crash scoped to that loop's test and assert containment: the victim must \
             abort, every other loop's verdict must be byte-identical.")
  in
  let static_xcheck_arg =
    Arg.(
      value & flag
      & info [ "static-xcheck" ]
          ~doc:
            "Differential check of the static prover: run every generated program with the \
             fast-path on and off and fail on any divergence where a statically proved \
             Commutative disagrees with the dynamic stage or the exhaustive permutation oracle, \
             or where merely enabling the prover perturbs a dynamic verdict.")
  in
  let run seed count max_iters corpus no_metamorphic no_shrink fault_mode static_xcheck common =
    if count < 0 then begin
      Printf.eprintf "dca fuzz: --count must be non-negative (got %d)\n" count;
      2
    end
    else if max_iters < 2 || max_iters > Dca_gen.Oracle.max_trip then begin
      Printf.eprintf "dca fuzz: --max-iters must be in 2..%d (got %d)\n" Dca_gen.Oracle.max_trip
        max_iters;
      2
    end
    else if match common.co_jobs with Some j when j < 1 -> true | _ -> false then begin
      Printf.eprintf "dca fuzz: --jobs must be positive\n";
      2
    end
    else begin
      apply_common common;
      let cfg =
        {
          Dca_gen.Fuzz_driver.default_config with
          Dca_gen.Fuzz_driver.fz_seed = seed;
          fz_count = count;
          fz_max_iters = max_iters;
          fz_jobs = Option.value common.co_jobs ~default:1;
          fz_metamorphic = not no_metamorphic;
          fz_fault_mode = fault_mode;
          fz_static_xcheck = static_xcheck;
          fz_shrink = not no_shrink;
          fz_corpus = corpus;
        }
      in
      let result = Dca_gen.Fuzz_driver.run cfg in
      print_string result.Dca_gen.Fuzz_driver.r_report;
      Telemetry.flush ();
      if result.Dca_gen.Fuzz_driver.r_violations = [] then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random loop programs, decide ground-truth commutativity \
          with an exhaustive permutation oracle, and cross-check the DCA verdicts both ways")
    Term.(
      const run $ seed_arg $ count_arg $ max_iters_arg $ corpus_arg $ no_metamorphic_arg
      $ no_shrink_arg $ fault_mode_arg $ static_xcheck_arg $ common_term)

(* ------------------------------------------------------------------ *)

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "dca-serve.sock"

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH" ~doc)

(* dca serve: the persistent analysis daemon.  The common flags apply
   daemon-wide: --jobs is the default pool width for requests that do not
   set their own, --trace/--stats instrument the whole serving run,
   --faults arms a daemon-wide plan (a request's own plan replaces it for
   that request and disarms it after). *)
let serve_cmd =
  let cache_dir_arg =
    let doc =
      "Directory for the persistent verdict-cache level (created if missing).  Without it the \
       cache is in-memory only and dies with the daemon."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let cache_capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"In-memory verdict-cache entries (default 4096).")
  in
  let sessions_arg =
    Arg.(
      value & opt int 8
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Warm sessions kept alive across requests (LRU-evicted beyond $(docv)).")
  in
  let access_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:"Append one JSONL record per request: op, program, status, hits, elapsed time.")
  in
  let max_requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Exit after serving $(docv) requests (tests and smoke runs).")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Connections served concurrently ($(docv) worker domains behind one accept loop).  \
             $(b,--workers 1) recovers the serial one-connection-at-a-time daemon; replies are \
             byte-identical either way.")
  in
  let metrics_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Rewrite a Prometheus-style text exposition of the daemon's metrics to $(docv) \
             (atomically, temp + rename) after every request — point a file-based scraper at it.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Overload bound: a connection arriving while $(docv) are already queued is shed with \
             an immediate $(b,busy) reply (nothing is admitted, so retrying is always safe).")
  in
  let request_timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Reply deadline per request: past it the client gets a structured timeout error and \
             the connection is closed, while the analysis finishes (and is cached) server-side.")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "drain-timeout" ] ~docv:"SECONDS"
          ~doc:
            "On SIGTERM/SIGINT the daemon stops accepting and finishes in-flight requests; \
             stragglers still running past $(docv) are abandoned instead of blocking the exit.")
  in
  let slow_request_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "slow-request-ms" ] ~docv:"MS"
          ~doc:
            "Mark requests slower than $(docv) in the access log ($(b,\"slow\": true)) and count \
             them in $(b,dca_slow_requests_total).")
  in
  let run socket cache_dir cache_capacity sessions workers access_log metrics_file max_requests
      max_queue request_timeout drain_timeout slow_request common =
    apply_common common;
    let cfg =
      {
        Dca_serve.Server.sv_socket = socket;
        sv_cache_dir = cache_dir;
        sv_cache_capacity = cache_capacity;
        sv_sessions = sessions;
        sv_jobs = common.co_jobs;
        sv_workers = workers;
        sv_access_log = access_log;
        sv_metrics_file = metrics_file;
        sv_max_requests = max_requests;
        sv_max_queue = max_queue;
        sv_request_timeout_ms = request_timeout;
        sv_drain_timeout_s = drain_timeout;
        sv_slow_request_ms = slow_request;
        (* the CLI daemon drains gracefully on SIGTERM/SIGINT; embedders
           of Server.run opt in explicitly *)
        sv_handle_signals = true;
      }
    in
    match Dca_serve.Server.run cfg with
    | served ->
        Printf.eprintf "dca serve: served %d request(s)\n" served;
        Telemetry.flush ();
        0
    | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "dca serve: cannot listen on %s: %s\n" socket (Unix.error_message err);
        1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon: JSON-lines requests over a Unix-domain socket, \
          answered from a content-addressed verdict cache when the program has not changed")
    Term.(
      const run $ socket_arg $ cache_dir_arg $ cache_capacity_arg $ sessions_arg $ workers_arg
      $ access_log_arg $ metrics_file_arg $ max_requests_arg $ max_queue_arg
      $ request_timeout_arg $ drain_timeout_arg $ slow_request_arg $ common_term)

(* dca client: one request against a running daemon.  The session-shaped
   common flags travel in the request (--jobs, --deadline-ms,
   --heap-words, --faults scope to this request on the server); --trace
   and --stats instrument the client process itself. *)
let client_cmd =
  let op_arg =
    let doc = "One of $(b,analyze), $(b,ping), $(b,stats), $(b,shutdown)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let prog_opt_arg =
    let doc = "Program for $(b,analyze): a .mc file or a built-in benchmark name." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"PROG" ~doc)
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Bypass the verdict cache for this request (the fresh result is still stored).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "With $(b,stats): print the daemon's metrics as a Prometheus-style text exposition \
             (latency histogram, cache hit/miss counters, in-flight gauge) instead of the plain \
             counter table.")
  in
  let retries_arg =
    Arg.(
      value & opt int 6
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Total attempts (including the first) against a busy, overloaded, or not-yet-listening \
             daemon, with capped-exponential backoff between them.  $(b,--retries 1) disables \
             retrying.")
  in
  let retry_base_arg =
    Arg.(
      value & opt float 50.
      & info [ "retry-base-ms" ] ~docv:"MS"
          ~doc:"First backoff delay; each retry doubles it (capped at 2000 ms) before jitter.")
  in
  let retry_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "retry-seed" ] ~docv:"SEED"
          ~doc:
            "Jitter seed: equal seeds give equal backoff schedules; concurrent clients should \
             pick different seeds to decorrelate their retries.")
  in
  let run socket op prog shuffles no_escalate hierarchical no_cache metrics retries retry_base
      retry_seed common =
    apply_common common;
    match Dca_serve.Protocol.op_of_string op with
    | None ->
        Printf.eprintf "dca client: unknown op '%s' (expected analyze|ping|stats|shutdown)\n" op;
        2
    | Some rq_op -> (
        let rq_program =
          match (rq_op, prog) with
          | Dca_serve.Protocol.Analyze, Some p ->
              (* ship local .mc files inline so the daemon needs no
                 filesystem agreement with the client *)
              if Sys.file_exists p && not (Sys.is_directory p) then
                let ic = open_in_bin p in
                let source =
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () -> really_input_string ic (in_channel_length ic))
                in
                Some (Dca_serve.Protocol.Inline { file = p; source; input = [] })
              else Some (Dca_serve.Protocol.Named p)
          | _ -> None
        in
        if rq_op = Dca_serve.Protocol.Analyze && rq_program = None then begin
          Printf.eprintf "dca client: analyze needs a PROG argument\n";
          2
        end
        else
          let rq =
            {
              Dca_serve.Protocol.rq_id = Unix.getpid ();
              rq_op;
              rq_program;
              rq_jobs = common.co_jobs;
              rq_shuffles = Some shuffles;
              rq_hierarchical = hierarchical;
              rq_no_escalate = no_escalate;
              rq_deadline_ms = common.co_deadline_ms;
              rq_heap_words = common.co_heap_words;
              rq_faults = common.co_faults;
              rq_no_cache = no_cache;
              rq_no_static = common.co_no_static;
            }
          in
          let backoff =
            {
              Dca_serve.Client.default_backoff with
              Dca_serve.Client.bo_attempts = max 1 retries;
              bo_base_ms = retry_base;
              bo_seed = retry_seed;
            }
          in
          match Dca_serve.Client.request_retry ~backoff socket rq with
          | Error msg ->
              Printf.eprintf "dca client: %s\n" msg;
              1
          | Ok rp ->
              let open Dca_serve.Protocol in
              if rp.rp_status = Busy then begin
                Printf.eprintf "dca client: server busy: %s\n"
                  (Option.value rp.rp_error ~default:"overloaded");
                1
              end
              else if not (Dca_serve.Protocol.ok rp) then begin
                Printf.eprintf "dca client: server error: %s\n"
                  (Option.value rp.rp_error ~default:"unknown");
                1
              end
              else begin
                (match rp.rp_report with Some report -> print_string report | None -> ());
                (if metrics then
                   match rp.rp_metrics with
                   | Some j -> (
                       match Dca_serve.Metrics.snapshot_of_json j with
                       | Ok snap -> print_string (Dca_serve.Metrics.exposition snap)
                       | Error msg -> Printf.eprintf "dca client: bad metrics payload: %s\n" msg)
                   | None ->
                       Printf.eprintf "dca client: --metrics needs a stats reply (op was %s)\n" op
                 else begin
                   List.iter (fun (k, v) -> Printf.printf "%-24s %d\n" k v) rp.rp_counters;
                   (* latency summary straight from the histogram buckets *)
                   match Option.map Dca_serve.Metrics.snapshot_of_json rp.rp_metrics with
                   | Some (Ok snap) -> (
                       match
                         List.assoc_opt "dca_request_duration_seconds"
                           snap.Dca_serve.Metrics.sn_hists
                       with
                       | Some h when h.Dca_serve.Metrics.hs_count > 0 ->
                           let q p = Dca_serve.Metrics.quantile h p *. 1000. in
                           Printf.printf "%-24s p50=%.1f p90=%.1f p99=%.1f\n" "latency(ms)"
                             (q 0.5) (q 0.9) (q 0.99)
                       | _ -> ())
                   | _ -> ()
                 end);
                if rp.rp_loops <> [] then
                  Printf.eprintf "dca client: %d loop(s), %d from cache, %d computed, %.1f ms\n"
                    (List.length rp.rp_loops) rp.rp_hits rp.rp_misses
                    (float_of_int rp.rp_elapsed_ns /. 1e6);
                Telemetry.flush ();
                0
              end)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,dca serve) daemon and print the reply (the report of \
          $(b,analyze) is byte-identical to running $(b,dca analyze) locally)")
    Term.(
      const run $ socket_arg $ op_arg $ prog_opt_arg $ shuffles_arg $ no_escalate_arg
      $ hierarchical_arg $ no_cache_arg $ metrics_arg $ retries_arg $ retry_base_arg
      $ retry_seed_arg $ common_term)

(* Top-level exit-code contract: 0 = success, 1 = analysis/program
   failure, 2 = usage error (including a malformed fault plan), 3 =
   internal error (an exception no containment layer absorbed).  Set
   DCA_DEBUG=1 for a backtrace on internal errors. *)
let () =
  let debug = Sys.getenv_opt "DCA_DEBUG" = Some "1" in
  if debug then Printexc.record_backtrace true;
  let doc = "Loop parallelization using Dynamic Commutativity Analysis (CGO 2021 reproduction)" in
  let info = Cmd.info "dca" ~version:"1.0.0" ~doc in
  let code =
    try
      Cmd.eval' ~catch:false
        (Cmd.group info
           [
             list_cmd;
             run_cmd;
             ir_cmd;
             analyze_cmd;
             batch_cmd;
             tools_cmd;
             speedup_cmd;
             advise_cmd;
             annotate_cmd;
             export_c_cmd;
             fuzz_cmd;
             serve_cmd;
             client_cmd;
           ])
    with
    | Faultpoint.Bad_plan msg ->
        Printf.eprintf "dca: invalid fault plan: %s\n" msg;
        2
    | e ->
        let bt = Printexc.get_backtrace () in
        Printf.eprintf "dca: internal error: %s\n" (Printexc.to_string e);
        if debug then prerr_string bt;
        3
  in
  exit code
