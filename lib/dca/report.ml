(** Human-readable reports of DCA results (the "auxiliary reports" of
    paper §IV-A4). *)

open Dca_analysis

type provenance = Driver.provenance = Dynamic | Static

let provenance_to_string = function Dynamic -> "dynamic" | Static -> "static"

(* Every verdict line carries its provenance: [Static] prints an explicit
   " [static]" marker; [Dynamic] prints nothing extra, because the
   dynamic stage's own " [tested N invocation(s)...]" annotation (when an
   outcome exists) is the dynamic marker — and because Dynamic-only
   reports must stay byte-identical to pre-fast-path reports. *)
let summary_line (r : Driver.loop_result) =
  let extra =
    match r.Driver.lr_outcome with
    | Some oc ->
        Printf.sprintf " [tested %d invocation(s)%s%s]" oc.Commutativity.oc_invocations
          (if oc.Commutativity.oc_escalated then ", escalated" else "")
          (if oc.Commutativity.oc_promotions > 0 then
             Printf.sprintf ", %d worklist promotion(s)" oc.Commutativity.oc_promotions
           else "")
    | None -> (
        match r.Driver.lr_provenance with Static -> " [static]" | Dynamic -> "")
  in
  Printf.sprintf "%-24s depth=%d  %s%s" r.Driver.lr_label r.Driver.lr_loop.Loops.l_depth
    (Driver.decision_to_string r.Driver.lr_decision)
    extra

(* Aggregated over the outcome records only — a pure fold, so the footer
   is byte-identical for identical results regardless of worker count,
   checkpoint mode, or whether telemetry was even enabled. *)
let counters results =
  let count pred = List.length (List.filter pred results) in
  let sum f =
    List.fold_left
      (fun acc (r : Driver.loop_result) ->
        match r.Driver.lr_outcome with Some oc -> acc + f oc | None -> acc)
      0 results
  in
  [
    ("loops", List.length results);
    ("commutative", count Driver.is_commutative);
    ( "non-commutative",
      count (fun r -> match r.Driver.lr_decision with Driver.Non_commutative _ -> true | _ -> false) );
    ("untestable", count (fun r -> match r.Driver.lr_decision with Driver.Untestable _ -> true | _ -> false));
    ("rejected", count (fun r -> match r.Driver.lr_decision with Driver.Rejected _ -> true | _ -> false));
    ("subsumed", count (fun r -> match r.Driver.lr_decision with Driver.Subsumed _ -> true | _ -> false));
    ("aborted", count (fun r -> match r.Driver.lr_decision with Driver.Aborted _ -> true | _ -> false));
    ("invocations", sum (fun oc -> oc.Commutativity.oc_invocations));
    ("golden-runs", sum (fun oc -> oc.Commutativity.oc_golden_runs));
    ("replays", sum (fun oc -> oc.Commutativity.oc_replays));
    ("replay-steps", sum (fun oc -> oc.Commutativity.oc_replay_steps));
    ("skipped-schedules", sum (fun oc -> oc.Commutativity.oc_skipped_schedules));
    ( "escalated-loops",
      count (fun r ->
          match r.Driver.lr_outcome with Some oc -> oc.Commutativity.oc_escalated | None -> false) );
    ("promotions", sum (fun oc -> oc.Commutativity.oc_promotions));
  ]

let footer_line results =
  counters results
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
  |> String.concat " "
  |> Printf.sprintf "counters: %s"

let to_string results =
  let total = List.length results in
  let commutative = List.length (List.filter Driver.is_commutative results) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "DCA: %d/%d loop(s) commutative\n" commutative total);
  List.iter (fun r -> Buffer.add_string buf ("  " ^ summary_line r ^ "\n")) results;
  Buffer.add_string buf (footer_line results ^ "\n");
  Buffer.contents buf

let print results = print_string (to_string results)
