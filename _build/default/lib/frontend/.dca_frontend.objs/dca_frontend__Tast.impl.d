lib/frontend/tast.ml: Ast Loc
