examples/quickstart.mli:
