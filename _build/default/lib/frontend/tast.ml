(** Typed abstract syntax, produced by {!Typecheck} and consumed by the IR
    lowering.  Every expression carries its type; variable references are
    resolved to unique [var] records; implicit int→float coercions are made
    explicit with {!Titof} nodes. *)

type ty = Ast.ty

type var_kind = Vglobal | Vlocal | Vparam

type var = { v_uid : int; v_name : string; v_ty : ty; v_kind : var_kind }
(** [v_uid] is unique across the whole program, which lets later phases use
    it as a stable key. *)

type texpr = { tdesc : tdesc; tty : ty; tloc : Loc.t }

and tdesc =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tnull
  | Tvar of var
  | Tunop of Ast.unop * texpr
  | Titof of texpr  (** implicit int→float coercion *)
  | Tftoi of texpr  (** explicit float→int truncation (builtin [ftoi]) *)
  | Tbinop of Ast.binop * texpr * texpr
      (** Operands have equal types after coercion; comparisons yield [Tint]. *)
  | Tindex of texpr * texpr  (** base has array or pointer type *)
  | Tfield of texpr * string * int  (** struct-valued base; resolved field index *)
  | Tarrow of texpr * string * int  (** struct-pointer base; resolved field index *)
  | Tcall of string * texpr list
  | Tnew_struct of string
  | Tnew_array of ty * texpr

type tstmt = { tsdesc : tsdesc; tsloc : Loc.t }

and tsdesc =
  | TSdecl of var * texpr option
  | TSassign of texpr * texpr  (** left-hand side is an lvalue expression *)
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSreturn of texpr option
  | TSexpr of texpr
  | TSprints of string
  | TSbreak
  | TScontinue
  | TSblock of tstmt list

type tfunc = {
  tf_name : string;
  tf_params : var list;
  tf_ret : ty;
  tf_body : tstmt list;
  tf_loc : Loc.t;
}

type tprogram = {
  tp_structs : Ast.struct_def list;
  tp_globals : (var * texpr option) list;
  tp_funcs : tfunc list;
}

(** An lvalue is a variable, an element of an array, a struct field, or a
    field reached through a pointer. *)
let rec is_lvalue e =
  match e.tdesc with
  | Tvar _ -> true
  | Tindex (base, _) -> is_lvalue base || (match base.tty with Ast.Tptr _ -> true | _ -> false)
  | Tfield (base, _, _) -> is_lvalue base
  | Tarrow (_, _, _) -> true
  | _ -> false
