test/test_progs.ml: Alcotest Benchmark Dca_analysis Dca_interp Dca_progs List Printf Registry
